"""Stream-conformance harness: the contract every request stream must pass.

Every concrete :class:`~repro.serve.request.RequestStream` subclass in the
repository is registered here as a :class:`StreamCase`; the driver
(``tests/serve/test_stream_conformance.py``) parametrizes one certification
suite over the registry:

* **seeded bit-determinism** -- ``generate(seed)`` is a pure function of the
  seed, identical across repeats and across concurrent threads (the
  ``--jobs`` execution mode);
* **arrival invariants** -- sequential ids, non-decreasing non-negative
  arrivals bounded by the stream horizon, deadlines at or after arrival,
  well-formed poses, per-session frame monotonicity;
* **conservation** -- the realized request count matches the configured
  demand (exactly for session/trace streams, within generous bounds for
  stochastic ones);
* **mix convergence** -- empirical scenario shares approach the stream's
  advertised mix weights;
* **differential equivalence** -- the fleet simulator's FIFO fast path and
  its discrete-event loop agree bit-exactly on the stream, bare and under
  an admission + shedding control plane;
* **importer fidelity** -- ``dump_trace`` -> ``load_trace`` round-trips the
  realization losslessly (JSON-lines always; CSV when the stream uses no
  JSONL-only fields).

A new stream subclass that is not registered fails the completeness gate
(`test_every_stream_subclass_is_certified`), so the library cannot grow an
uncertified arrival process.

Not collected by pytest (no ``test_`` prefix); the repo root is on
``pythonpath`` so the driver imports it as ``tests.serve.stream_conformance``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.serve.request import (
    DiurnalStream,
    PoissonStream,
    Request,
    RequestStream,
    Scenario,
    ScenarioMix,
    TraceStream,
)
from repro.serve.traffic import (
    FlashCrowdStream,
    ImportedTraceStream,
    MarkedBurstStream,
    MultiTenantStream,
    SessionStream,
    TenantSpec,
)

#: Fixed certification seed (shared with the serving fuzz suites).
SEED = 20260808

#: Deliberately tiny frames: the shared engine simulates each unique
#: (device, scenario) pair once, so certifying every stream costs a
#: handful of frame simulations total.
TINY_SCENARIOS = (
    Scenario("instant-ngp", scene="lego", width=96, height=96),
    Scenario("instant-ngp", scene="mic", width=64, height=64),
    Scenario("tensorf", scene="lego", width=80, height=80),
)

WEIGHTED_MIX = ScenarioMix(TINY_SCENARIOS, weights=(2.0, 1.0, 1.0))
SINGLE_MIX = ScenarioMix((TINY_SCENARIOS[0],))

#: Absolute tolerance on empirical mix shares (a few hundred samples per
#: stream; binomial noise is ~0.04, so 0.1 certifies convergence without
#: flaking on the fixed seed).
MIX_TOLERANCE = 0.1


@dataclass(frozen=True)
class StreamCase:
    """One certified stream: a factory plus its conformance expectations.

    ``build`` returns a fresh stream instance (cases must not share mutable
    state across tests); the expectation fields encode which checks apply:

    * ``exact_count`` -- ``generate(SEED)`` returns exactly this many
      requests (``None`` -> use ``count_bounds``);
    * ``count_bounds`` -- inclusive (lo, hi) bounds on the realized count,
      derived from the configured rate and horizon;
    * ``max_duration_s`` -- every arrival is < this horizon (``None`` for
      replay streams whose horizon is the trace itself);
    * ``mix_convergent`` -- empirical scenario shares must approach the
      stream's advertised ``mix`` weights (off for replay/session streams
      whose composition is structural, not sampled per request);
    * ``seed_sensitive`` -- different seeds must produce different
      realizations (off for verbatim replay streams);
    * ``csv_roundtrip`` -- the realization survives the CSV importer too
      (streams emitting poses or pinned requests are JSONL-only).
    """

    name: str
    build: Callable[[], RequestStream] = field(repr=False)
    exact_count: int | None = None
    count_bounds: tuple[int, int] | None = None
    max_duration_s: float | None = None
    mix_convergent: bool = True
    seed_sensitive: bool = True
    csv_roundtrip: bool = True


def _imported_requests() -> tuple[Request, ...]:
    """A deterministic synthetic serving log exercising every trace field."""
    requests = []
    tenants = ("studio", None, "batch")
    for index in range(120):
        scenario = TINY_SCENARIOS[index % len(TINY_SCENARIOS)]
        arrival = index * 0.05
        in_session = index % 4 == 0
        requests.append(
            Request(
                request_id=index,
                arrival_s=arrival,
                scenario=scenario,
                deadline_s=arrival + 0.25 if index % 2 == 0 else None,
                tenant=tenants[index % len(tenants)],
                session=index % 3 if in_session else None,
                degradable=index % 5 != 0,
                pose=(3.0 * index, 30.0, 4.0) if in_session else None,
            )
        )
    return tuple(requests)


def _trace_times() -> tuple[float, ...]:
    """Recorded arrival times for the :class:`TraceStream` case."""
    return tuple(0.02 * i for i in range(200))


CASES: tuple[StreamCase, ...] = (
    StreamCase(
        name="poisson",
        build=lambda: PoissonStream(
            rate_rps=40.0, duration_s=8.0, mix=WEIGHTED_MIX, sla_s=0.25
        ),
        count_bounds=(200, 440),  # mean 320, sd ~18
        max_duration_s=8.0,
    ),
    StreamCase(
        name="diurnal",
        build=lambda: DiurnalStream(
            base_rps=10.0,
            peak_rps=50.0,
            period_s=4.0,
            duration_s=8.0,
            mix=WEIGHTED_MIX,
            sla_s=0.5,
        ),
        count_bounds=(140, 340),  # mean rate (base+peak)/2 = 30 -> ~240
        max_duration_s=8.0,
    ),
    StreamCase(
        name="trace",
        build=lambda: TraceStream(
            _trace_times(),
            mix=WEIGHTED_MIX,
            scenarios=tuple(
                TINY_SCENARIOS[i % len(TINY_SCENARIOS)] for i in range(200)
            ),
            sla_s=0.3,
        ),
        exact_count=200,
        mix_convergent=False,  # scenarios recorded, not sampled
        seed_sensitive=False,  # verbatim replay
    ),
    StreamCase(
        name="imported-trace",
        build=lambda: ImportedTraceStream(_imported_requests(), WEIGHTED_MIX),
        exact_count=120,
        mix_convergent=False,
        seed_sensitive=False,
        csv_roundtrip=False,  # carries poses and pinned requests
    ),
    StreamCase(
        name="flash-crowd",
        build=lambda: FlashCrowdStream(
            base_rps=10.0,
            burst_rps=80.0,
            duration_s=8.0,
            mix=WEIGHTED_MIX,
            num_bursts=2,
            burst_s=1.0,
            sla_s=0.3,
        ),
        count_bounds=(110, 350),  # mean 10*8 + 70*2*1 = 220
        max_duration_s=8.0,
    ),
    StreamCase(
        name="marked-burst",
        build=lambda: MarkedBurstStream(
            immigrant_rps=15.0,
            duration_s=8.0,
            mix=WEIGHTED_MIX,
            offspring_mean=0.5,
            decay_s=0.3,
            sla_s=0.4,
        ),
        count_bounds=(100, 420),  # long-run mean 30 rps, clustered variance
        max_duration_s=8.0,
    ),
    StreamCase(
        name="multi-tenant",
        build=lambda: MultiTenantStream(
            (
                TenantSpec(
                    "interactive",
                    12.0,
                    ScenarioMix((TINY_SCENARIOS[0],)),
                    sla_s=0.15,
                ),
                TenantSpec(
                    "batch", 8.0, ScenarioMix((TINY_SCENARIOS[2],)), sla_s=1.0
                ),
                TenantSpec(
                    "free", 6.0, ScenarioMix((TINY_SCENARIOS[1],)), sla_s=0.4
                ),
            ),
            duration_s=8.0,
        ),
        count_bounds=(120, 300),  # merged mean 26 rps -> ~208
        max_duration_s=8.0,
    ),
    StreamCase(
        name="session",
        build=lambda: SessionStream(
            SINGLE_MIX,
            num_sessions=6,
            frames_per_session=30,
            fps=20.0,
            start_spread_s=1.0,
            jitter_s=0.004,
        ),
        exact_count=180,  # 6 sessions x 30 frames, exact by construction
        max_duration_s=3.0,  # spread 1.0 + 30 frames / 20 fps + jitter
        mix_convergent=False,  # one scenario per session, not per request
        csv_roundtrip=False,  # carries poses
    ),
)


def case_by_name(name: str) -> StreamCase:
    """Look up a registered case (driver parametrization helper)."""
    for case in CASES:
        if case.name == name:
            return case
    raise KeyError(name)


def covered_classes() -> set[type]:
    """The stream classes the registry certifies (one instance per case)."""
    return {type(case.build()) for case in CASES}


def _walk_subclasses(cls: type) -> Iterator[type]:
    """Yield every (transitive) subclass of ``cls``."""
    for sub in cls.__subclasses__():
        yield sub
        yield from _walk_subclasses(sub)


def all_concrete_stream_classes() -> set[type]:
    """Every concrete ``RequestStream`` subclass the repository defines.

    Test-local subclasses (fixtures defining throwaway streams) are out of
    scope; only classes living under the ``repro`` package must certify.
    """
    return {
        sub
        for sub in _walk_subclasses(RequestStream)
        if sub.__module__.startswith("repro.") and not inspect.isabstract(sub)
    }


def check_invariants(case: StreamCase, requests: tuple[Request, ...]) -> None:
    """Assert the structural arrival invariants on one realization."""
    assert requests, f"{case.name}: empty realization"
    for index, request in enumerate(requests):
        assert request.request_id == index, (
            f"{case.name}: ids must be sequential from 0 "
            f"(got {request.request_id} at position {index})"
        )
        assert request.arrival_s >= 0.0, f"{case.name}: negative arrival"
        if case.max_duration_s is not None:
            assert request.arrival_s < case.max_duration_s, (
                f"{case.name}: arrival {request.arrival_s} past horizon"
            )
        if request.deadline_s is not None:
            assert request.deadline_s >= request.arrival_s, (
                f"{case.name}: deadline before arrival on request {index}"
            )
        if request.pose is not None:
            assert len(request.pose) == 3, f"{case.name}: malformed pose"
    arrivals = [request.arrival_s for request in requests]
    assert arrivals == sorted(arrivals), f"{case.name}: arrivals not sorted"
    # Frames of one session must arrive monotonically and share a scenario.
    by_session: dict[int, list[Request]] = {}
    for request in requests:
        if request.session is not None:
            by_session.setdefault(request.session, []).append(request)
    for session, frames in by_session.items():
        times = [frame.arrival_s for frame in frames]
        assert times == sorted(times), (
            f"{case.name}: session {session} frames out of order"
        )


def check_count(case: StreamCase, requests: tuple[Request, ...]) -> None:
    """Assert the realized count matches the configured demand."""
    if case.exact_count is not None:
        assert len(requests) == case.exact_count, (
            f"{case.name}: expected exactly {case.exact_count} requests, "
            f"got {len(requests)}"
        )
    if case.count_bounds is not None:
        lo, hi = case.count_bounds
        assert lo <= len(requests) <= hi, (
            f"{case.name}: count {len(requests)} outside [{lo}, {hi}]"
        )


def check_mix_convergence(case: StreamCase, requests: tuple[Request, ...]) -> None:
    """Assert empirical scenario shares approach the advertised mix."""
    stream = case.build()
    weights = stream.mix.weights
    if weights is None:
        weights = tuple(1.0 for _ in stream.mix.scenarios)
    total = sum(weights)
    counts: dict[Scenario, int] = {s: 0 for s in stream.mix.scenarios}
    for request in requests:
        assert request.scenario in counts, (
            f"{case.name}: scenario {request.scenario.label} not in the mix"
        )
        counts[request.scenario] += 1
    for scenario, weight in zip(stream.mix.scenarios, weights):
        expected = weight / total
        observed = counts[scenario] / len(requests)
        assert abs(observed - expected) <= MIX_TOLERANCE, (
            f"{case.name}: {scenario.label} share {observed:.3f} vs "
            f"expected {expected:.3f} (tolerance {MIX_TOLERANCE})"
        )

"""Edge cases of the per-tenant / per-session report aggregation.

:meth:`~repro.serve.report.ServingReport.by_tenant` and
:meth:`~repro.serve.report.ServingReport.by_session` are pure functions of
the completion and rejection logs, so their edges are pinned directly
against simulated runs on **both** simulator paths (the FIFO fast path
``run`` and the reference ``_run_event_loop``):

* a declared tenant that offered zero requests still gets a row, with
  trivial 1.0 attainment and neutral latency/quality stats;
* untagged requests group under :data:`~repro.serve.report.UNTAGGED_TENANT`
  and undeclared-but-seen tenants follow the declared rows in sorted order;
* a single-session stream reports exactly one session row whose counters
  reconcile with the fleet-wide report;
* a session whose every frame misses its deadline reports zero attainment
  and ``fully_met=False``, including frames lost to admission rejection;
* conservation: per-tenant ``offered`` partitions ``num_requests``.
"""

import pytest

from repro.serve.control import ControlConfig, QueueCapAdmission
from repro.serve.fleet import FleetSimulator
from repro.serve.report import UNTAGGED_TENANT
from repro.serve.request import Request, Scenario, ScenarioMix, TraceStream
from repro.serve.scheduler import FIFOScheduler
from repro.serve.traffic import SessionStream, TenantSpec, MultiTenantStream
from repro.sim.sweep import SweepEngine

TINY = Scenario("instant-ngp", scene="lego", width=96, height=96)
MIX = ScenarioMix((TINY,))


@pytest.fixture(scope="module")
def engine():
    """One shared engine: each unique (device, scenario) simulates once."""
    return SweepEngine()


def both_paths(simulator, requests):
    """Reports from the fast path and the event loop (asserted equal)."""
    fast = simulator.run(requests)
    slow = simulator._run_event_loop(requests)
    assert fast == slow
    return (fast, slow)


class TestByTenant:
    def test_declared_zero_request_tenant_gets_trivial_row(self, engine):
        """A declared tenant with no traffic: forced row, 1.0 attainment."""
        stream = MultiTenantStream(
            (TenantSpec("active", 20.0, MIX, sla_s=0.5),), duration_s=3.0
        )
        requests = stream.generate(seed=7)
        simulator = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler(), engine=engine)
        for report in both_paths(simulator, requests):
            rows = report.by_tenant(declared=("active", "ghost"))
            assert [r.tenant for r in rows] == ["active", "ghost"]
            ghost = rows[1]
            assert ghost.offered == ghost.completed == ghost.rejected == 0
            assert ghost.met_deadline == 0
            assert ghost.slo_attainment == 1.0
            assert ghost.mean_latency_s == 0.0
            assert ghost.p95_latency_s == 0.0
            assert ghost.mean_quality == 1.0

    def test_untagged_and_undeclared_tenants_order(self, engine):
        """Untagged requests group under '-'; extras follow sorted."""
        requests = tuple(
            Request(request_id=i, arrival_s=0.1 * i, scenario=TINY, tenant=tag)
            for i, tag in enumerate((None, "zeta", "alpha", None, "zeta"))
        )
        simulator = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler(), engine=engine)
        for report in both_paths(simulator, requests):
            rows = report.by_tenant(declared=("zeta",))
            assert [r.tenant for r in rows] == ["zeta", UNTAGGED_TENANT, "alpha"]
            assert [r.offered for r in rows] == [2, 2, 1]

    def test_offered_partitions_num_requests(self, engine):
        """Per-tenant offered counts sum to the fleet-wide request count."""
        stream = MultiTenantStream(
            (
                TenantSpec("a", 150.0, MIX, sla_s=0.2),
                TenantSpec("b", 100.0, MIX, sla_s=0.4),
            ),
            duration_s=2.0,
        )
        requests = stream.generate(seed=3)
        control = ControlConfig(admission=QueueCapAdmission(max_queue=2))
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=FIFOScheduler(),
            engine=engine,
            control=control,
        )
        for report in both_paths(simulator, requests):
            rows = report.by_tenant(declared=("a", "b"))
            assert sum(r.offered for r in rows) == report.num_requests
            assert sum(r.completed for r in rows) == report.completed_requests
            assert sum(r.rejected for r in rows) == report.rejected_requests
            assert report.rejected_requests > 0  # the cap actually bit

    def test_no_tenants_yields_single_untagged_row(self, engine):
        """A tenant-free stream aggregates to one untagged row."""
        requests = TraceStream((0.0, 0.1, 0.2), mix=MIX).generate(seed=0)
        simulator = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler(), engine=engine)
        for report in both_paths(simulator, requests):
            rows = report.by_tenant()
            assert [r.tenant for r in rows] == [UNTAGGED_TENANT]
            assert rows[0].offered == 3


class TestBySession:
    def test_single_session_stream_reports_one_row(self, engine):
        """One session: one row, counters reconcile with the fleet report."""
        stream = SessionStream(
            MIX, num_sessions=1, frames_per_session=12, fps=10.0, start_spread_s=0.0
        )
        requests = stream.generate(seed=11)
        simulator = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler(), engine=engine)
        for report in both_paths(simulator, requests):
            rows = report.by_session()
            assert len(rows) == 1
            (row,) = rows
            assert row.session == 0
            assert row.frames == 12
            assert row.completed == report.completed_requests
            assert row.missed == row.frames - report.met_deadline_requests
            assert row.fully_met == (row.missed == 0)

    def test_all_deadlines_missed_session(self, engine):
        """Impossible deadlines: zero attainment, fully_met=False."""
        requests = tuple(
            Request(
                request_id=i,
                arrival_s=0.01 * i,
                scenario=TINY,
                deadline_s=0.01 * i,  # due the instant it arrives
                session=0,
            )
            for i in range(8)
        )
        simulator = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler(), engine=engine)
        for report in both_paths(simulator, requests):
            (row,) = report.by_session()
            assert row.completed == 8  # everything renders...
            assert row.missed == 8  # ...and everything is late
            assert row.slo_attainment == 0.0
            assert not row.fully_met

    def test_rejected_frames_count_as_missed(self, engine):
        """Frames lost at admission are offered-and-missed for the session."""
        stream = SessionStream(
            MIX,
            num_sessions=3,
            frames_per_session=20,
            fps=400.0,
            start_spread_s=0.02,
        )
        requests = stream.generate(seed=5)
        control = ControlConfig(admission=QueueCapAdmission(max_queue=1))
        simulator = FleetSimulator(
            ("flexnerfer",),
            scheduler=FIFOScheduler(),
            engine=engine,
            control=control,
        )
        for report in both_paths(simulator, requests):
            assert report.rejected_requests > 0
            rows = report.by_session()
            assert [row.session for row in rows] == [0, 1, 2]
            assert sum(row.frames for row in rows) == 60
            assert sum(row.completed for row in rows) == report.completed_requests
            for row in rows:
                assert row.missed >= row.frames - row.completed

    def test_sessionless_stream_reports_nothing(self, engine):
        """Streams without session ids produce an empty by_session()."""
        requests = TraceStream((0.0, 0.5), mix=MIX).generate(seed=0)
        simulator = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler(), engine=engine)
        for report in both_paths(simulator, requests):
            assert report.by_session() == ()

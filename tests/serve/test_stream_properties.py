"""Fixed-seed property fuzz of the pre-existing arrival streams.

The conformance harness certifies one pinned configuration per stream;
this suite complements it for the two streams that predate the scenario
library -- :class:`~repro.serve.request.DiurnalStream` and
:class:`~repro.serve.request.TraceStream` -- by drawing hundreds of
randomized configurations from a fixed-seed stream and asserting the
harness invariants on every one of them:

* arrivals are sorted, non-negative and inside the configured horizon;
* the realization is a pure function of the seed (bit-determinism);
* the diurnal envelope is honored: ``rate_at`` stays within
  ``[base_rps, peak_rps]`` and the realized count respects the peak-rate
  upper envelope;
* traces replay verbatim (arrival times and recorded scenarios), and
  malformed traces are rejected at construction.

The iteration budget defaults to 200 configurations and is tunable via
``REPRO_FUZZ_ITERATIONS`` (CI's ``traffic-fuzz`` job raises it).
"""

import os
import random

from repro.serve.request import DiurnalStream, Scenario, ScenarioMix, TraceStream

from tests.serve.stream_conformance import (
    StreamCase,
    check_count,
    check_invariants,
)

#: Fixed fuzz seed: the whole suite is one reproducible random stream.
SEED = 20260808

#: Combined config budget; override with REPRO_FUZZ_ITERATIONS=<n>.
ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "200"))

SCENARIOS = (
    Scenario("instant-ngp", scene="lego", width=96, height=96),
    Scenario("instant-ngp", scene="mic", width=64, height=64),
    Scenario("tensorf", scene="lego", width=80, height=80),
)


def _random_mix(rng: random.Random) -> ScenarioMix:
    """A random non-empty sub-mix of the tiny scenarios."""
    count = rng.randint(1, len(SCENARIOS))
    scenarios = tuple(rng.sample(SCENARIOS, count))
    if rng.random() < 0.5:
        return ScenarioMix(scenarios)
    return ScenarioMix(
        scenarios, weights=tuple(rng.uniform(0.5, 4.0) for _ in scenarios)
    )


def test_diurnal_stream_honors_envelope_and_invariants():
    """Randomized diurnal configs: envelope, horizon, determinism, count."""
    rng = random.Random(SEED)
    for iteration in range(ITERATIONS):
        base = rng.uniform(1.0, 25.0)
        peak = base * rng.uniform(1.0, 4.0)
        period = rng.uniform(0.5, 6.0)
        duration = rng.uniform(1.0, 6.0)
        stream = DiurnalStream(
            base_rps=base,
            peak_rps=peak,
            period_s=period,
            duration_s=duration,
            mix=_random_mix(rng),
            sla_s=rng.choice((None, rng.uniform(0.05, 1.0))),
        )
        seed = rng.getrandbits(32)
        requests = stream.generate(seed=seed)
        if not requests:
            continue  # short low-rate horizons may legitimately be empty
        case = StreamCase(
            name=f"diurnal[{iteration}]",
            build=lambda stream=stream: stream,
            max_duration_s=duration,
        )
        check_invariants(case, requests)
        assert requests == stream.generate(seed=seed), case.name
        # The modulation envelope never leaves [base, peak].
        for t in (0.0, 0.25 * period, 0.5 * period, 0.73 * period, duration):
            rate = stream.rate_at(t)
            assert base - 1e-9 <= rate <= peak + 1e-9, case.name
        # Thinning a peak-rate process can never exceed the peak envelope
        # by much: bound the count at mean + 6 sigma of Poisson(peak * T).
        envelope = peak * duration
        assert len(requests) <= envelope + 6.0 * max(envelope, 1.0) ** 0.5 + 1, (
            case.name
        )


def test_trace_stream_replays_verbatim():
    """Randomized traces: exact replay of times and recorded scenarios."""
    rng = random.Random(SEED + 1)
    for iteration in range(ITERATIONS):
        count = rng.randint(1, 120)
        times = sorted(rng.uniform(0.0, 30.0) for _ in range(count))
        if rng.random() < 0.3:  # exercise exact ties
            times = [round(t, 1) for t in times]
        recorded = (
            tuple(rng.choice(SCENARIOS) for _ in range(count))
            if rng.random() < 0.5
            else None
        )
        stream = TraceStream(
            times,
            mix=_random_mix(rng),
            scenarios=recorded,
            sla_s=rng.choice((None, rng.uniform(0.05, 1.0))),
        )
        seed = rng.getrandbits(32)
        requests = stream.generate(seed=seed)
        case = StreamCase(
            name=f"trace[{iteration}]",
            build=lambda stream=stream: stream,
            exact_count=count,
        )
        check_invariants(case, requests)
        check_count(case, requests)
        assert [r.arrival_s for r in requests] == [float(t) for t in times]
        if recorded is not None:
            assert tuple(r.scenario for r in requests) == recorded
            # Recorded scenarios make the realization seed-independent.
            assert requests == stream.generate(seed=seed + 1)
        else:
            assert requests == stream.generate(seed=seed)


def test_trace_stream_rejects_malformed_traces():
    """Decreasing, negative or mislabeled traces fail at construction."""
    mix = ScenarioMix((SCENARIOS[0],))
    rng = random.Random(SEED + 2)
    for _ in range(max(1, ITERATIONS // 4)):
        times = sorted(rng.uniform(0.0, 10.0) for _ in range(rng.randint(2, 40)))
        bad = list(times)
        i = rng.randrange(len(bad) - 1)
        bad[i + 1] = bad[i] - rng.uniform(0.1, 1.0)  # force a decrease
        try:
            TraceStream(bad, mix=mix)
        except ValueError as exc:
            assert "non-decreasing" in str(exc)
        else:  # pragma: no cover - the swap must have produced a decrease
            raise AssertionError(f"decreasing trace accepted: {bad}")
    try:
        TraceStream((-1.0, 0.0), mix=mix)
    except ValueError as exc:
        assert "non-negative" in str(exc)
    else:
        raise AssertionError("negative trace accepted")
    try:
        TraceStream((0.0, 1.0), mix=mix, scenarios=(SCENARIOS[0],))
    except ValueError as exc:
        assert "scenarios" in str(exc)
    else:
        raise AssertionError("length-mismatched scenarios accepted")

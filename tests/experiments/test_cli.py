"""Tests for the ``repro`` CLI: selection, formats, artifacts, exit codes."""

import json

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(autouse=True)
def _detach_default_store():
    """CLI runs attach the result store to the shared engine; detach after
    each test so other modules keep exercising the pure in-memory path."""
    yield
    from repro.sim.sweep import get_default_engine

    get_default_engine().attach_store(None)


class TestList:
    def test_lists_every_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        for key in EXPERIMENTS:
            assert key in out

    def test_tag_filter(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--tags", "frame-sim")
        assert code == 0
        assert "fig19" in out
        assert "table02" not in out

    def test_unknown_tag_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "list", "--tags", "nope")
        assert code == 2
        assert err.startswith("error:") and "valid" in err

    def test_json_listing_exposes_param_schema(self, capsys):
        code, out, _ = run_cli(capsys, "list", "--format", "json")
        assert code == 0
        entries = {entry["id"]: entry for entry in json.loads(out)}
        fig19 = entries["fig19"]
        flags = {param["flag"] for param in fig19["params"]}
        assert flags == {"--models", "--pruning-ratios"}

    def test_help(self, capsys):
        code, out, _ = run_cli(capsys, "--help")
        assert code == 0
        assert "usage" in out


class TestRunErrors:
    def test_unknown_id_exits_2_listing_valid_ids(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig99")
        assert code == 2
        assert err.count("\n") == 1  # one line, not a traceback
        assert "unknown experiment 'fig99'" in err
        assert "fig01" in err and "ablation-noc" in err

    def test_bad_param_value_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig19", "--pruning-ratios", "0,zap")
        assert code == 2
        assert err.count("\n") == 1
        assert "--pruning-ratios" in err

    def test_unknown_param_flag_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig06", "--bogus", "1")
        assert code == 2
        assert "unknown parameter '--bogus'" in err

    def test_unknown_tag_selector_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "run", "tag:nope")
        assert code == 2
        assert "valid tags" in err

    def test_no_selection_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "run")
        assert code == 2

    def test_bad_format_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig06", "--format", "xml")
        assert code == 2
        assert "invalid format" in err

    def test_well_typed_but_invalid_value_exits_2(self, capsys):
        # -4 parses as an int; the experiment itself rejects it at run time.
        code, _, err = run_cli(capsys, "run", "fig06", "--rows", "-4")
        assert code == 2
        assert err.count("\n") == 1  # one line, not a traceback
        assert err.startswith("error: fig06:")

    def test_unknown_scene_value_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig13", "--scenes", "nope")
        assert code == 2
        assert err.count("\n") == 1
        assert "unknown scene" in err


class TestRun:
    def test_table_output(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig06")
        assert code == 0
        assert "===== fig06:" in out
        assert "INT16" in out

    def test_param_flags_reach_the_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig06", "--rows", "32", "--cols", "32")
        assert code == 0
        assert "32x32" in out

    def test_json_output_is_parseable(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig04", "--format", "json")
        assert code == 0
        payload = json.loads(out)
        assert payload[0]["experiment_id"] == "fig04"
        assert payload[0]["provenance"]["params"] == {}

    def test_csv_output(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig04", "--format", "csv")
        assert code == 0
        assert out.splitlines()[1].startswith("scenario")

    def test_tag_selector_runs_group(self, capsys):
        code, out, _ = run_cli(capsys, "run", "tag:formats", "--format", "json")
        assert code == 0
        ids = [entry["experiment_id"] for entry in json.loads(out)]
        assert ids == ["fig07", "fig08"]

    def test_legacy_invocation_styles(self, capsys):
        code, out, _ = run_cli(capsys, "fig06")
        assert code == 0
        assert "===== fig06:" in out

    def test_out_dir_writes_artifacts(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "run", "fig04", "table02", "--format", "json",
            "--out", str(tmp_path),
        )
        assert code == 0
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "fig04.json", "table02.json",
        ]
        data = json.loads((tmp_path / "fig04.json").read_text())
        assert data["columns"]

    def test_jobs_flag_produces_same_tables(self, capsys):
        _, serial_out, _ = run_cli(capsys, "run", "fig04", "fig06", "table02")
        code, parallel_out, _ = run_cli(
            capsys, "run", "fig04", "fig06", "table02", "--jobs", "3"
        )
        assert code == 0

        def tables(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("=====")  # headers carry wall times
            ]

        assert tables(parallel_out) == tables(serial_out)


class TestStoreFlags:
    def test_run_attaches_the_default_store(self, capsys, monkeypatch, tmp_path):
        from repro.sim.sweep import get_default_engine

        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        # Earlier tests may have warmed the in-memory report cache; drop it
        # so this run demonstrably persists its simulations.
        get_default_engine().clear()
        code, _, _ = run_cli(capsys, "run", "fig01")
        assert code == 0
        engine = get_default_engine()
        assert engine.store is not None
        assert engine.store.root == tmp_path
        assert engine.store.stats().entries > 0  # frame sims were persisted

    def test_no_store_detaches(self, capsys):
        from repro.sim.sweep import get_default_engine

        code, _, _ = run_cli(capsys, "run", "fig04", "--no-store")
        assert code == 0
        assert get_default_engine().store is None

    def test_warm_run_replays_byte_identical_output(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        code, cold_out, _ = run_cli(capsys, "run", "fig04", "fig06", "fig12")
        assert code == 0
        code, warm_out, _ = run_cli(capsys, "run", "fig04", "fig06", "fig12")
        assert code == 0
        # Includes the `===== id: title (Xs) =====` headers: cached results
        # keep the producing run's provenance, so even wall times match.
        assert warm_out == cold_out

    def test_param_override_misses_the_result_cache(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        code, default_out, _ = run_cli(capsys, "run", "fig06")
        assert code == 0
        code, overridden_out, _ = run_cli(
            capsys, "run", "fig06", "--rows", "32", "--cols", "32"
        )
        assert code == 0
        assert "32x32" in overridden_out
        assert overridden_out != default_out

    def test_warm_json_artifacts_match_cold(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        run_cli(capsys, "run", "fig04", "--format", "json", "--out", str(cold_dir))
        run_cli(capsys, "run", "fig04", "--format", "json", "--out", str(warm_dir))
        assert (
            (cold_dir / "fig04.json").read_text()
            == (warm_dir / "fig04.json").read_text()
        )


class TestCache:
    def test_needs_an_action(self, capsys):
        code, _, err = run_cli(capsys, "cache")
        assert code == 2
        assert "stats | clear | evict" in err

    def test_unknown_action_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "cache", "explode")
        assert code == 2
        assert "unknown cache action" in err

    def test_stats_json_on_explicit_dir(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "cache", "stats", "--dir", str(tmp_path), "--format", "json"
        )
        assert code == 0
        stats = json.loads(out)
        assert stats["root"] == str(tmp_path)
        assert stats["entries"] == 0

    def test_clear_reports_removals(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path))
        run_cli(capsys, "run", "fig01")
        code, out, _ = run_cli(capsys, "cache", "stats")
        assert code == 0 and str(tmp_path) in out
        code, out, _ = run_cli(capsys, "cache", "clear")
        assert code == 0 and "removed" in out
        code, out, _ = run_cli(
            capsys, "cache", "stats", "--format", "json"
        )
        assert json.loads(out)["entries"] == 0

    def test_evict_with_bounds(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "cache", "evict", "--dir", str(tmp_path),
            "--max-entries", "10", "--max-age-days", "1",
        )
        assert code == 0 and "evicted 0 entries" in out

    def test_evict_bad_bound_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "evict", "--dir", str(tmp_path), "--max-entries", "x"
        )
        assert code == 2
        assert "--max-entries" in err

    def test_evict_negative_bound_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "evict", "--dir", str(tmp_path), "--max-entries", "-5"
        )
        assert code == 2
        assert ">= 0" in err

    def test_stats_bad_format_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "stats", "--dir", str(tmp_path), "--format", "josn"
        )
        assert code == 2
        assert "invalid cache format" in err

    def test_clear_rejects_eviction_bounds(self, capsys, tmp_path):
        # `clear --max-age-days 30` must not silently wipe everything.
        code, _, err = run_cli(
            capsys, "cache", "clear", "--dir", str(tmp_path),
            "--max-age-days", "30",
        )
        assert code == 2
        assert "unknown option" in err

    def test_stats_rejects_eviction_bounds(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "cache", "stats", "--dir", str(tmp_path), "--max-entries", "5"
        )
        assert code == 2
        assert "unknown option" in err


class TestDocs:
    def test_writes_catalog(self, capsys, tmp_path):
        target = tmp_path / "experiments.md"
        code, out, _ = run_cli(capsys, "docs", "--out", str(target))
        assert code == 0 and f"wrote {target}" in out
        text = target.read_text()
        assert "# Experiment catalog" in text
        for exp_id in EXPERIMENTS:
            assert f"`{exp_id}`" in text

    def test_check_passes_on_fresh_catalog(self, capsys, tmp_path):
        target = tmp_path / "experiments.md"
        run_cli(capsys, "docs", "--out", str(target))
        code, out, _ = run_cli(capsys, "docs", "--out", str(target), "--check")
        assert code == 0
        assert "up to date" in out

    def test_check_fails_on_stale_catalog(self, capsys, tmp_path):
        target = tmp_path / "experiments.md"
        run_cli(capsys, "docs", "--out", str(target))
        target.write_text(target.read_text() + "\ndrift\n")
        code, _, err = run_cli(capsys, "docs", "--out", str(target), "--check")
        assert code == 1
        assert "stale" in err

    def test_check_fails_when_catalog_missing(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "docs", "--out", str(tmp_path / "missing.md"), "--check"
        )
        assert code == 1 and "stale" in err

    def test_checked_in_catalog_is_current(self, capsys):
        """The repository's docs/experiments.md must match the registry."""
        from pathlib import Path

        from repro.experiments.catalog import CATALOG_PATH, catalog_markdown

        repo_root = Path(__file__).resolve().parents[2]
        checked_in = repo_root / CATALOG_PATH
        assert checked_in.exists(), "docs/experiments.md missing; run 'repro docs'"
        assert checked_in.read_text() == catalog_markdown(), (
            "docs/experiments.md is stale; run 'repro docs' to regenerate"
        )

    def test_default_path_is_anchored_to_the_repo_not_cwd(
        self, capsys, tmp_path, monkeypatch
    ):
        from pathlib import Path

        from repro.experiments.catalog import CATALOG_PATH, default_catalog_path

        repo_root = Path(__file__).resolve().parents[2]
        assert default_catalog_path() == repo_root / CATALOG_PATH
        # The installed console script may run from anywhere.
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(capsys, "docs", "--check")
        assert code == 0 and "up to date" in out
        assert not (tmp_path / "docs").exists()

"""Tests for the NoC and compression ablation experiments."""

import pytest

from repro.experiments import ablation_compression, ablation_noc, run_experiment
from repro.sparse.formats import Precision


class TestNoCAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_noc.run(num_leaves=32, num_steps=48, reuse=0.6)

    def test_feedback_path_saves_memory_energy(self, result):
        """Paper Section 4.1.2: HMF-NoC spends ~2.5x less on-chip access energy."""
        assert result.memory_access_energy_ratio > 1.5
        assert result.hmf_buffer_reads < result.hm_buffer_reads

    def test_clb_restores_full_bandwidth(self, result):
        assert all(v == 1.0 for v in result.clb_bandwidth_utilization.values())
        assert result.no_clb_bandwidth_utilization[Precision.INT16] == pytest.approx(0.25)
        assert result.no_clb_bandwidth_utilization[Precision.INT8] == pytest.approx(0.5)

    def test_registry_integration(self):
        result = run_experiment("ablation-noc", num_leaves=16, num_steps=8)
        assert result.raw is not None
        assert result.provenance.params["num_leaves"] == 16

    def test_table_renders(self):
        text = run_experiment(
            "ablation-noc", num_leaves=16, num_steps=8
        ).to_table()
        assert "HMF-NoC" in text and "INT16" in text


class TestCompressionAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_compression.run(models=("instant-ngp", "nerf"), pruning_ratio=0.7)

    def test_compression_reduces_traffic_for_pruned_models(self, rows):
        for row in rows:
            assert row.compressed_bytes < row.uncompressed_bytes
            assert row.traffic_reduction > 0.3

    def test_higher_pruning_means_more_reduction(self):
        light = ablation_compression.run(models=("nerf",), pruning_ratio=0.3)[0]
        heavy = ablation_compression.run(models=("nerf",), pruning_ratio=0.9)[0]
        assert heavy.traffic_reduction > light.traffic_reduction

    def test_table_renders(self):
        text = run_experiment(
            "ablation-compression", models=("instant-ngp", "nerf"), pruning_ratio=0.7
        ).to_table()
        assert "reduction" in text

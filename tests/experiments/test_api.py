"""Tests for the first-class Experiment API: typed params, uniform results,
serialization, golden-table parity, and parallel execution."""

import json
from pathlib import Path

import pytest

import repro
from repro.experiments import (
    EXPERIMENTS,
    BadParamError,
    ExperimentResult,
    Param,
    UnknownExperimentError,
    get_experiment,
    run_experiment,
)
from repro.experiments.api import config_fingerprint
from repro.experiments.cli import run_many
from repro.sparse.formats import Precision

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def results():
    """Every registered experiment run once with default parameters."""
    return {key: exp.run() for key, exp in EXPERIMENTS.items()}


class TestResultShape:
    def test_every_experiment_returns_well_formed_result(self, results):
        for key, result in results.items():
            assert isinstance(result, ExperimentResult)
            assert result.experiment_id == key
            assert result.title == EXPERIMENTS[key].title
            assert result.columns, key
            assert result.rows, key
            for row in result.rows:
                assert isinstance(row, dict)
                assert tuple(row.keys()) == result.columns

    def test_rows_are_json_safe(self, results):
        for key, result in results.items():
            text = json.dumps([dict(r) for r in result.rows])
            assert json.loads(text) is not None, key

    def test_provenance_is_complete(self, results):
        for key, result in results.items():
            provenance = result.provenance
            assert provenance.experiment_id == key
            assert provenance.repo_version == repro.__version__
            assert provenance.wall_time_s >= 0.0
            assert len(provenance.config_fingerprint) == 16
            declared = {p.name for p in EXPERIMENTS[key].params}
            assert set(provenance.params) == declared

    def test_fingerprint_depends_on_params(self):
        base = config_fingerprint("fig19", {"models": ["nerf"]})
        assert base == config_fingerprint("fig19", {"models": ["nerf"]})
        assert base != config_fingerprint("fig19", {"models": ["tensorf"]})
        assert base != config_fingerprint("fig18", {"models": ["nerf"]})


class TestSerialization:
    def test_json_round_trip(self, results):
        for key, result in results.items():
            restored = ExperimentResult.from_json(result.to_json())
            assert restored == result, key

    def test_csv_has_header_and_rows(self, results):
        for result in results.values():
            lines = result.to_csv().splitlines()
            assert len(lines) == len(result.rows) + 1
            assert lines[0].split(",")[0] == result.columns[0].split(",")[0]

    def test_deserialized_result_still_renders_a_table(self, results):
        restored = ExperimentResult.from_json(results["fig04"].to_json())
        text = restored.to_table()
        assert "early_cnn" in text


class TestGoldenTables:
    """Default table output is pinned byte-for-byte against the seed modules."""

    def test_golden_file_per_experiment(self):
        assert {p.stem for p in GOLDEN_DIR.glob("*.txt")} == set(EXPERIMENTS)

    @pytest.mark.parametrize("key", sorted(EXPERIMENTS))
    def test_table_matches_golden(self, key, results):
        golden = (GOLDEN_DIR / f"{key}.txt").read_text().rstrip("\n")
        assert results[key].to_table() == golden


class TestTypedParams:
    def test_unknown_experiment(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("fig99")
        with pytest.raises(KeyError):  # back-compat: it is also a KeyError
            get_experiment("fig99")

    def test_unknown_param_rejected(self):
        with pytest.raises(BadParamError):
            run_experiment("fig06", bogus=1)

    def test_string_values_are_parsed(self):
        result = run_experiment("fig06", rows="32", cols="32")
        assert result.raw[0].num_multipliers == 32 * 32
        assert result.provenance.params["rows"] == 32

    def test_repeated_params_parse_comma_separated(self):
        param = get_experiment("fig19").param("pruning_ratios")
        assert param.parse("0,0.5,0.9") == (0.0, 0.5, 0.9)
        with pytest.raises(BadParamError):
            param.parse("0,zap")

    def test_precision_params_parse_names(self):
        param = get_experiment("fig15").param("precision")
        assert param.parse("int8") is Precision.INT8
        assert param.parse("INT16") is Precision.INT16
        with pytest.raises(BadParamError):
            param.parse("fp64")

    def test_sequences_are_coerced(self):
        result = run_experiment("fig19", models=["instant-ngp"], pruning_ratios=[0, 0.9])
        assert result.provenance.params["pruning_ratios"] == [0.0, 0.9]

    def test_bad_element_type_rejected(self):
        with pytest.raises(BadParamError):
            run_experiment("fig06", rows=object())

    def test_param_flag_naming(self):
        assert Param("pruning_ratios", float, (), repeated=True).flag == "--pruning-ratios"


class TestParallelExecution:
    def test_run_all_jobs2_matches_serial(self, results):
        experiments = list(EXPERIMENTS.values())
        parallel = run_many(experiments, jobs=2)
        assert [r.experiment_id for r in parallel] == list(EXPERIMENTS)
        for result in parallel:
            serial = results[result.experiment_id]
            assert result.columns == serial.columns
            assert result.rows == serial.rows
            assert result.to_table() == serial.to_table()

"""Tests that every experiment runs and reproduces the paper's key trends."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments import (
    fig01_gpu_latency,
    fig04_mac_utilization,
    fig07_footprint,
    fig08_optimal_format,
    fig16_cost,
    fig18_latency_density,
    fig19_speedup_energy,
    fig20b_batch,
)
from repro.sparse.formats import Precision, SparsityFormat


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "fig01", "fig03", "fig04", "fig06", "fig07", "fig08", "fig12",
            "fig13", "table02", "table03", "fig15", "fig16", "fig17",
            "fig18", "fig19", "fig20a", "fig20b",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_every_experiment_is_registered_with_metadata(self):
        for exp in EXPERIMENTS.values():
            assert callable(exp.fn)
            assert exp.title
            assert exp.tags
            # Either the shared grid renderer or a custom layout is wired up.
            assert exp.columns is not None or exp.render is not None


class TestFig01:
    def test_every_model_misses_realtime_thresholds(self):
        rows = fig01_gpu_latency.run()
        assert len(rows) == 7
        assert all(row.exceeds_vr_threshold for row in rows)
        assert all(row.exceeds_game_threshold for row in rows)


class TestFig03:
    def test_gemm_dominates_everywhere(self):
        rows = run_experiment("fig03").raw
        for row in rows:
            assert row.gemm_fraction > 0.3
            assert row.total == pytest.approx(1.0)
        encoding_heavy = {row.model: row.encoding_fraction for row in rows}
        assert encoding_heavy["instant-ngp"] > encoding_heavy["nerf"]


class TestFig04:
    def test_matches_paper_annotations(self):
        rows = {row.scenario: row for row in fig04_mac_utilization.run()}
        assert rows["early_cnn"].nvdla_utilization == pytest.approx(0.375)
        assert rows["late_cnn"].nvdla_utilization == pytest.approx(1.0)
        assert rows["late_cnn"].tpu_utilization == pytest.approx(0.5)
        assert rows["irregular_dense_gemm"].nvdla_utilization == pytest.approx(0.0625)
        assert rows["irregular_dense_gemm"].tpu_utilization == pytest.approx(1.0)
        assert rows["irregular_sparse_gemm"].tpu_utilization == pytest.approx(0.6875)


class TestFig06:
    def test_fetch_size_doubles(self):
        rows = run_experiment("fig06").raw
        fetch = [row.fetch_bytes for row in rows]
        assert fetch == [8192, 16384, 32768]


class TestFig07And08:
    def test_breakeven_moves_right_at_lower_precision(self):
        series = fig07_footprint.run()
        crossovers = {
            precision: fig07_footprint.crossover_sparsity(series, precision)
            for precision in (Precision.INT16, Precision.INT4)
        }
        assert (
            crossovers[Precision.INT16][SparsityFormat.COO]
            < crossovers[Precision.INT4][SparsityFormat.COO]
        )

    def test_format_progression(self):
        rows = {row.precision: row for row in fig08_optimal_format.run()}
        for row in rows.values():
            formats = [fmt for _, fmt in row.transition_points()]
            assert formats[0] is SparsityFormat.NONE
            assert SparsityFormat.BITMAP in formats
            assert formats[-1] in (SparsityFormat.CSR, SparsityFormat.COO)


class TestFig12:
    def test_reductions_match_paper(self):
        result = run_experiment("fig12").raw
        assert result.area_reduction == pytest.approx(0.283, abs=0.03)
        assert result.power_reduction == pytest.approx(0.456, abs=0.03)
        assert result.shifter_reduction == pytest.approx(1 / 3, abs=0.01)


class TestFig13:
    def test_stage_sparsity_trends(self):
        rows = {row.scene: row for row in run_experiment("fig13").raw}
        for row in rows.values():
            assert row.input_ray_marching > 0.5
            assert row.output_relu1 < 0.1
            assert 0.2 < row.output < 0.8
        assert rows["mic"].input_ray_marching > rows["lego"].input_ray_marching


class TestTable03:
    def test_flexnerfer_has_best_effective_efficiency(self):
        table = run_experiment("table03").raw
        flex = table.row("FlexNeRFer MAC Array")
        for name in ("SIGMA", "Bit Fusion", "Bit-Scalable SIGMA"):
            other = table.row(name)
            shared = set(flex.effective_efficiency) & set(other.effective_efficiency)
            for precision in shared:
                assert (
                    flex.effective_efficiency[precision]
                    >= other.effective_efficiency[precision]
                )


class TestFig16And17:
    def test_only_accelerators_fit_constraints(self):
        rows = {row.device: row for row in fig16_cost.run()}
        assert not rows["RTX 2080 Ti"].meets_area_constraint
        assert rows["NeuRex"].meets_area_constraint and rows["NeuRex"].meets_power_constraint
        assert rows["FlexNeRFer"].meets_area_constraint and rows["FlexNeRFer"].meets_power_constraint

    def test_overheads_relative_to_neurex(self):
        result = run_experiment("fig17").raw
        assert 0.2 < result.area_overhead < 0.8      # paper: ~48 %
        assert 0.1 < result.power_overhead < 0.6     # paper: ~35 %
        assert 0.0 < result.format_codec_area_fraction < 0.08


class TestFig18:
    def test_latency_and_density_trends(self):
        rows = fig18_latency_density.run()
        flex = {row.precision: row for row in rows if row.device == "FlexNeRFer"}
        assert flex[Precision.INT16].normalized_latency < 0.6
        assert (
            flex[Precision.INT4].normalized_latency
            < flex[Precision.INT8].normalized_latency
            < flex[Precision.INT16].normalized_latency
        )
        assert flex[Precision.INT16].compute_density > 1.0
        assert flex[Precision.INT4].compute_density > flex[Precision.INT16].compute_density


class TestFig19:
    @pytest.fixture(scope="class")
    def points(self):
        return fig19_speedup_energy.run(
            models=("instant-ngp",), pruning_ratios=(0.0, 0.5, 0.9)
        )

    def test_neurex_flat_flexnerfer_grows(self, points):
        neurex = [p for p in points if p.device == "NeuRex"]
        assert max(p.speedup for p in neurex) == pytest.approx(
            min(p.speedup for p in neurex)
        )
        flex16 = [
            p for p in points
            if p.device == "FlexNeRFer" and p.precision is Precision.INT16
        ]
        assert flex16[-1].speedup > flex16[0].speedup

    def test_lower_precision_is_faster(self, points):
        def speedup(precision):
            return next(
                p.speedup for p in points
                if p.device == "FlexNeRFer" and p.precision is precision
                and p.pruning_ratio == 0.0
            )
        assert speedup(Precision.INT4) > speedup(Precision.INT8) > speedup(Precision.INT16)

    def test_flexnerfer_beats_neurex_and_gpu(self, points):
        neurex = next(p for p in points if p.device == "NeuRex")
        flex = next(
            p for p in points
            if p.device == "FlexNeRFer" and p.precision is Precision.INT16
            and p.pruning_ratio == 0.0
        )
        assert flex.speedup > neurex.speedup > 1.0
        assert flex.energy_efficiency_gain > 1.0


class TestFig20:
    def test_psnr_trends(self):
        points = {p.label: p for p in run_experiment("fig20a").raw}
        # INT16 is essentially loss-less, lower precisions degrade monotonically.
        assert points["INT16"].psnr_db > 40.0
        assert points["INT16"].psnr_db >= points["INT8"].psnr_db >= points["INT4"].psnr_db
        # Keeping outliers at INT16 recovers quality without losing the gain.
        assert points["INT8 + outliers"].psnr_db >= points["INT8"].psnr_db
        assert points["INT4 + outliers"].psnr_db >= points["INT4"].psnr_db
        assert points["INT4"].energy_efficiency_gain > points["INT16"].energy_efficiency_gain

    def test_batch_sweep_trends(self):
        points = fig20b_batch.run()
        by_scene = {}
        for point in points:
            by_scene.setdefault(point.scene, []).append(point)
        for scene_points in by_scene.values():
            speedups = [p.speedup for p in sorted(scene_points, key=lambda p: p.batch_size)]
            assert speedups[-1] >= speedups[0]                 # grows with batch size
            assert speedups[-1] == pytest.approx(speedups[-2], rel=0.05)  # plateaus
        mic = min(p.flexnerfer_latency_s for p in by_scene["mic"])
        palace = min(p.flexnerfer_latency_s for p in by_scene["palace"])
        assert mic < palace                                     # simple scene is faster

"""Tests for the array configuration and GEMM tiling."""

import pytest

from repro.nerf.workload import GEMMOp
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.tiling import tile_counts
from repro.sparse.formats import Precision


def _flexible_config(**overrides):
    defaults = dict(
        name="test",
        rows=64,
        cols=64,
        bit_scalable=True,
        supports_sparsity=True,
        mapping=MappingFlexibility.FLEXIBLE,
    )
    defaults.update(overrides)
    return ArrayConfig(**defaults)


class TestArrayConfig:
    def test_bit_scalable_precisions(self):
        config = _flexible_config()
        assert set(config.supported_precisions()) == {
            Precision.INT4, Precision.INT8, Precision.INT16,
        }

    def test_fixed_precision_array_falls_back(self):
        config = ArrayConfig(name="dense", bit_scalable=False)
        assert config.effective_precision(Precision.INT4) is Precision.INT16

    def test_lane_scaling(self):
        config = _flexible_config()
        assert config.lane_scale(Precision.INT16) == 1
        assert config.lane_scale(Precision.INT8) == 4
        assert config.lane_scale(Precision.INT4) == 16

    def test_effective_grid_and_macs(self):
        config = _flexible_config()
        assert config.effective_grid(Precision.INT4) == (256, 256)
        assert config.macs_per_cycle(Precision.INT16) == 64 * 64
        assert config.macs_per_cycle(Precision.INT4) == 256 * 256

    def test_peak_ops(self):
        config = _flexible_config(frequency_hz=800e6)
        assert config.peak_ops_per_second(Precision.INT16) == pytest.approx(
            2 * 4096 * 800e6
        )

    def test_fetch_bytes_double_per_precision_step(self):
        config = _flexible_config()
        assert config.data_fetch_bytes(Precision.INT16) == 8192
        assert config.data_fetch_bytes(Precision.INT8) == 16384
        assert config.data_fetch_bytes(Precision.INT4) == 32768

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ArrayConfig(name="bad", rows=0)
        with pytest.raises(ValueError):
            ArrayConfig(name="bad", frequency_hz=0)
        with pytest.raises(ValueError):
            ArrayConfig(name="bad", pipeline_overhead=1.5)


class TestTiling:
    def test_exact_fit(self):
        op = GEMMOp("g", m=64, n=64, k=64)
        grid = tile_counts(op, _flexible_config())
        assert (grid.tiles_m, grid.tiles_n, grid.tiles_k) == (1, 1, 1)
        assert grid.edge_utilization == 1.0

    def test_irregular_shape_wastes_boundary(self):
        op = GEMMOp("g", m=65, n=65, k=65)
        grid = tile_counts(op, _flexible_config())
        assert grid.num_tiles == 8
        assert grid.edge_utilization < 0.2

    def test_lower_precision_uses_larger_tiles(self):
        op = GEMMOp("g", m=256, n=256, k=256, precision=Precision.INT4)
        grid = tile_counts(op, _flexible_config())
        assert grid.tile_m == 256
        assert grid.num_tiles == 1

    def test_output_tiles(self):
        op = GEMMOp("g", m=200, n=100, k=64)
        grid = tile_counts(op, _flexible_config())
        assert grid.num_output_tiles == grid.tiles_m * grid.tiles_n

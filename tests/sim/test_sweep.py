"""Tests for the cached parallel SweepEngine and its reducers."""

import pytest

from repro.experiments import fig19_speedup_energy
from repro.experiments._stats import gain_geomean, geomean
from repro.nerf.models import FrameConfig
from repro.sim.sweep import (
    SweepEngine,
    SweepSpec,
    aggregate,
    index_rows,
    workload_fingerprint,
)
from repro.sparse.formats import Precision

SMALL_CONFIG = FrameConfig(image_width=64, image_height=64, batch_size=1024)


@pytest.fixture
def engine():
    return SweepEngine()


class TestWorkloadCache:
    def test_same_model_and_config_built_once(self, engine):
        first = engine.workload("instant-ngp", SMALL_CONFIG)
        second = engine.workload("instant-ngp", SMALL_CONFIG)
        assert first is second
        assert engine.stats.workload_misses == 1
        assert engine.stats.workload_hits == 1

    def test_different_config_rebuilds(self, engine):
        first = engine.workload("instant-ngp", SMALL_CONFIG)
        other = engine.workload(
            "instant-ngp", FrameConfig(image_width=32, image_height=32)
        )
        assert first is not other
        assert engine.stats.workload_misses == 2

    def test_fingerprint_distinguishes_ops(self, engine):
        base = engine.workload("instant-ngp", SMALL_CONFIG)
        assert workload_fingerprint(base) == workload_fingerprint(base)
        assert workload_fingerprint(base) != workload_fingerprint(
            base.pruned(0.5)
        )


class TestReportCache:
    def test_second_identical_sweep_is_free(self, engine):
        spec = SweepSpec(
            devices=("flexnerfer", "neurex"),
            models=("instant-ngp",),
            precisions=(Precision.INT16, Precision.INT8),
            pruning_ratios=(0.0, 0.5),
            base_config=SMALL_CONFIG,
        )
        first = engine.run(spec)
        calls_after_first = engine.stats.render_calls
        second = engine.run(spec)
        assert engine.stats.render_calls == calls_after_first  # zero new renders
        for a, b in zip(first, second):
            assert a.report is b.report

    def test_capability_flags_collapse_redundant_points(self, engine):
        spec = SweepSpec(
            devices=("neurex",),
            models=("instant-ngp",),
            precisions=(Precision.INT16, Precision.INT8, Precision.INT4),
            pruning_ratios=(0.0, 0.5, 0.9),
            base_config=SMALL_CONFIG,
        )
        rows = engine.run(spec)
        assert len(rows) == 9
        # One physical simulation serves all nine requested points.
        assert engine.stats.render_calls == 1
        assert len({id(row.report) for row in rows}) == 1
        assert all(row.effective_precision is Precision.INT16 for row in rows)
        assert all(row.effective_pruning == 0.0 for row in rows)

    def test_non_batching_device_rows_keep_requested_batch(self, engine):
        rows = engine.run(
            SweepSpec(
                devices=("tpu",),
                models=("nerf",),
                batch_sizes=(2048, 8192),
                base_config=SMALL_CONFIG,
            )
        )
        # Rows stay distinguishable by the requested batch size even though
        # the device ignores batching and both points share one simulation.
        assert [row.batch_size for row in rows] == [2048, 8192]
        assert engine.stats.render_calls == 1

    def test_gpu_is_never_asked_for_unsupported_knobs(self, engine):
        rows = engine.run(
            SweepSpec(
                devices=("rtx-2080-ti",),
                models=("nerf",),
                precisions=(Precision.INT16, Precision.INT4),
                pruning_ratios=(0.0, 0.9),
                base_config=SMALL_CONFIG,
            )
        )
        assert len(rows) == 4
        assert engine.stats.render_calls == 1

    def test_parallel_sweep_matches_serial(self):
        spec = SweepSpec(
            devices=("flexnerfer", "neurex"),
            models=("nerf", "instant-ngp"),
            precisions=(Precision.INT16, Precision.INT8),
            base_config=SMALL_CONFIG,
        )
        serial = SweepEngine().run(spec)
        parallel_engine = SweepEngine(max_workers=2)
        parallel = parallel_engine.run(spec)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert (a.device, a.model, a.precision) == (b.device, b.model, b.precision)
            assert a.latency_s == pytest.approx(b.latency_s, rel=1e-12)
            assert a.energy_j == pytest.approx(b.energy_j, rel=1e-12)
        assert parallel_engine.stats.render_calls == 6  # 4 flex + 2 neurex

    def test_frame_report_single_point(self, engine):
        report = engine.frame_report(
            "flexnerfer", "nerf", config=SMALL_CONFIG, precision=Precision.INT8
        )
        again = engine.frame_report(
            "flexnerfer", "nerf", config=SMALL_CONFIG, precision=Precision.INT8
        )
        assert report is again
        assert engine.stats.render_calls == 1


class TestReducers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])

    def test_aggregate_and_index(self, engine):
        rows = engine.run(
            SweepSpec(
                devices=("flexnerfer",),
                models=("nerf", "instant-ngp"),
                precisions=(Precision.INT16, Precision.INT8),
                base_config=SMALL_CONFIG,
            )
        )
        indexed = index_rows(rows, "model", "precision")
        assert indexed[("nerf", Precision.INT8)].precision is Precision.INT8
        grouped = aggregate(rows, lambda r: r.latency_s, by=("precision",))
        assert set(grouped) == {(Precision.INT16,), (Precision.INT8,)}
        assert grouped[(Precision.INT8,)] < grouped[(Precision.INT16,)]

    def test_gain_geomean_matches_manual(self, engine):
        baseline = engine.run(
            SweepSpec(
                devices=("rtx-2080-ti",),
                models=("nerf", "instant-ngp"),
                base_config=SMALL_CONFIG,
            )
        )
        rows = engine.run(
            SweepSpec(
                devices=("flexnerfer",),
                models=("nerf", "instant-ngp"),
                base_config=SMALL_CONFIG,
            )
        )
        manual = geomean(
            b.latency_s / r.latency_s for b, r in zip(baseline, rows)
        )
        assert gain_geomean(baseline, rows) == pytest.approx(manual)


class TestFig19Parity:
    """The refactored Fig. 19 must reproduce its pre-refactor values exactly."""

    #: (device, precision, pruning) -> (speedup, energy gain), captured from
    #: the hand-rolled pre-SweepEngine implementation at the same settings.
    EXPECTED = {
        ("NeuRex", Precision.INT16, 0.0): (8.455220110052846, 214.32738286814188),
        ("NeuRex", Precision.INT16, 0.5): (8.455220110052846, 214.32738286814188),
        ("NeuRex", Precision.INT16, 0.9): (8.455220110052846, 214.32738286814188),
        ("FlexNeRFer", Precision.INT16, 0.0): (23.254996713648378, 487.63943154605624),
        ("FlexNeRFer", Precision.INT16, 0.5): (33.02056915956951, 837.651948482967),
        ("FlexNeRFer", Precision.INT16, 0.9): (49.72599304682657, 1967.3263239176413),
        ("FlexNeRFer", Precision.INT8, 0.0): (40.75427077081469, 1086.1728493592673),
        ("FlexNeRFer", Precision.INT8, 0.5): (47.82617649805277, 1566.1103599460905),
        ("FlexNeRFer", Precision.INT8, 0.9): (55.53584918148959, 2422.4234198159866),
        ("FlexNeRFer", Precision.INT4, 0.0): (52.120643998845125, 1832.9271745262204),
        ("FlexNeRFer", Precision.INT4, 0.5): (54.95176729605884, 2171.320387795484),
        ("FlexNeRFer", Precision.INT4, 0.9): (57.44837627517675, 2547.6104279787173),
    }

    def test_values_and_cache_reuse(self):
        engine = SweepEngine()
        points = fig19_speedup_energy.run(
            models=("instant-ngp",), pruning_ratios=(0.0, 0.5, 0.9), engine=engine
        )
        assert len(points) == len(self.EXPECTED)
        for point in points:
            speedup, gain = self.EXPECTED[
                (point.device, point.precision, point.pruning_ratio)
            ]
            assert point.speedup == pytest.approx(speedup, rel=1e-9)
            assert point.energy_efficiency_gain == pytest.approx(gain, rel=1e-9)

        # 1 GPU + 1 NeuRex + 9 FlexNeRFer simulations serve all 12 points.
        calls = engine.stats.render_calls
        assert calls == 11

        # Re-running the full experiment is pure cache: unchanged numbers,
        # zero new frame simulations.
        again = fig19_speedup_energy.run(
            models=("instant-ngp",), pruning_ratios=(0.0, 0.5, 0.9), engine=engine
        )
        assert engine.stats.render_calls == calls
        assert again == points


class TestProcessPoolPath:
    """The process-pool prefill must be bit-exact and cache-coherent."""

    SPEC = SweepSpec(
        devices=("flexnerfer", "neurex", "tpu"),
        models=("nerf", "instant-ngp"),
        precisions=(Precision.INT16, Precision.INT8),
        pruning_ratios=(0.0, 0.5),
        base_config=SMALL_CONFIG,
    )

    def test_pool_prefill_matches_serial_bit_exactly(self):
        serial_engine = SweepEngine()
        serial = serial_engine.run(self.SPEC)
        pool_engine = SweepEngine(max_workers=2)
        pooled = pool_engine.run(self.SPEC)
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert (a.device, a.model, a.precision, a.pruning_ratio) == (
                b.device, b.model, b.precision, b.pruning_ratio,
            )
            # Bit-exact, not approximate: the workers run the same pure
            # analytical model on the same workload.
            assert a.latency_s == b.latency_s
            assert a.energy_j == b.energy_j
            assert a.report.trace.total_time_s == b.report.trace.total_time_s

    def test_pool_cache_hit_accounting_matches_serial(self):
        serial_engine = SweepEngine()
        serial_engine.run(self.SPEC)
        pool_engine = SweepEngine(max_workers=2)
        pool_engine.run(self.SPEC)
        # Unique cache keys: flexnerfer 2 models x 2 precisions x 2 pruning
        # = 8; neurex and tpu collapse both knobs = 2 each.
        assert serial_engine.stats.render_calls == 12
        assert pool_engine.stats.render_calls == 12
        # Every remaining requested point is served from cache either way.
        assert pool_engine.stats.report_hits == serial_engine.stats.report_hits
        assert pool_engine.stats.report_hits == 24 - 12

    def test_second_pool_run_is_pure_cache(self):
        pool_engine = SweepEngine(max_workers=2)
        first = pool_engine.run(self.SPEC)
        calls = pool_engine.stats.render_calls
        second = pool_engine.run(self.SPEC)
        assert pool_engine.stats.render_calls == calls
        for a, b in zip(first, second):
            assert a.report is b.report

    def test_pool_and_serial_engines_agree_on_frame_report_path(self):
        pool_engine = SweepEngine(max_workers=2)
        pool_engine.run(self.SPEC)
        # A follow-up single-point query hits the prefetched cache.
        report = pool_engine.frame_report(
            "flexnerfer", "nerf", config=SMALL_CONFIG, precision=Precision.INT8
        )
        assert pool_engine.stats.render_calls == 12
        serial = SweepEngine().frame_report(
            "flexnerfer", "nerf", config=SMALL_CONFIG, precision=Precision.INT8
        )
        assert report.latency_s == serial.latency_s
        assert report.energy_j == serial.energy_j

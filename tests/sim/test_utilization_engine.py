"""Tests for the utilisation models, the cycle model and the traffic model."""

import pytest

from repro.hw.sram import SRAMMacro
from repro.nerf.workload import GEMMOp, OpCategory
from repro.sim.array_config import ArrayConfig, MappingFlexibility
from repro.sim.engine import GEMMCycleModel
from repro.sim.memory import MemoryTrafficModel
from repro.sim.trace import ExecutionTrace, OpRecord
from repro.sim.utilization import (
    dense_mapping_utilization,
    effective_mac_utilization,
    flexible_packing_efficiency,
    sparse_mapping_utilization,
)
from repro.sparse.formats import Precision, SparsityFormat


FLEXIBLE = ArrayConfig(
    name="flex", bit_scalable=True, supports_sparsity=True,
    mapping=MappingFlexibility.FLEXIBLE,
)
RIGID = ArrayConfig(name="rigid", mapping=MappingFlexibility.RIGID)


class TestUtilization:
    def test_flexible_mapping_is_shape_insensitive(self):
        square = GEMMOp("a", m=4096, n=64, k=64)
        irregular = GEMMOp("b", m=4096, n=65, k=37)
        assert dense_mapping_utilization(square, FLEXIBLE) == pytest.approx(
            dense_mapping_utilization(irregular, FLEXIBLE)
        )

    def test_rigid_mapping_suffers_on_irregular_shapes(self):
        square = GEMMOp("a", m=4096, n=64, k=64)
        irregular = GEMMOp("b", m=4096, n=65, k=37)
        assert dense_mapping_utilization(irregular, RIGID) < dense_mapping_utilization(
            square, RIGID
        )

    def test_packing_efficiency_decreases_with_precision(self):
        assert (
            flexible_packing_efficiency(Precision.INT16)
            > flexible_packing_efficiency(Precision.INT8)
            > flexible_packing_efficiency(Precision.INT4)
        )

    def test_sparse_mapping_ignores_sparsity_pattern(self):
        dense = GEMMOp("a", m=1000, n=128, k=128)
        sparse = GEMMOp("b", m=1000, n=128, k=128, activation_sparsity=0.9)
        assert sparse_mapping_utilization(sparse, FLEXIBLE) == pytest.approx(
            sparse_mapping_utilization(dense, FLEXIBLE)
        )

    def test_effective_utilization_penalises_non_sparse_arrays(self):
        op = GEMMOp("a", m=1000, n=64, k=64, activation_sparsity=0.5)
        assert effective_mac_utilization(op, RIGID) < effective_mac_utilization(op, FLEXIBLE)


class TestCycleModel:
    def test_sparsity_speeds_up_flexible_arrays(self):
        model = GEMMCycleModel(FLEXIBLE)
        dense = model.execute(GEMMOp("d", m=100000, n=256, k=256))
        sparse = model.execute(
            GEMMOp("s", m=100000, n=256, k=256, activation_sparsity=0.5)
        )
        assert sparse.compute_cycles < dense.compute_cycles

    def test_sparsity_does_not_help_rigid_arrays(self):
        model = GEMMCycleModel(RIGID)
        dense = model.execute(GEMMOp("d", m=100000, n=256, k=256))
        sparse = model.execute(
            GEMMOp("s", m=100000, n=256, k=256, activation_sparsity=0.5)
        )
        assert sparse.compute_cycles == pytest.approx(dense.compute_cycles)

    def test_lower_precision_reduces_cycles_on_bit_scalable_array(self):
        model = GEMMCycleModel(FLEXIBLE)
        int16 = model.execute(GEMMOp("a", m=100000, n=256, k=256, precision=Precision.INT16))
        int4 = model.execute(GEMMOp("a", m=100000, n=256, k=256, precision=Precision.INT4))
        assert int4.compute_cycles < int16.compute_cycles / 4

    def test_format_conversion_overhead(self):
        config = ArrayConfig(
            name="conv", bit_scalable=True, supports_sparsity=True,
            mapping=MappingFlexibility.FLEXIBLE, format_conversion_overhead=0.1,
        )
        execution = GEMMCycleModel(config).execute(GEMMOp("a", m=1000, n=64, k=64))
        assert execution.format_conversion_cycles == pytest.approx(
            0.1 * execution.compute_cycles
        )

    def test_total_time_is_sum_of_components(self):
        execution = GEMMCycleModel(FLEXIBLE).execute(GEMMOp("a", m=1000, n=64, k=64))
        assert execution.total_time_s == pytest.approx(
            execution.compute_time_s
            + execution.dram_time_s
            + execution.format_conversion_time_s
        )

    def test_execute_all(self):
        ops = [GEMMOp("a", m=100, n=64, k=64), GEMMOp("b", m=100, n=32, k=32)]
        assert len(GEMMCycleModel(FLEXIBLE).execute_all(ops)) == 2


class TestMemoryTraffic:
    def test_compression_reduces_weight_traffic(self):
        op = GEMMOp("a", m=1000, n=256, k=256, weight_sparsity=0.8)
        compressed = MemoryTrafficModel(compression_enabled=True).traffic(op)
        dense = MemoryTrafficModel(compression_enabled=False).traffic(op)
        assert compressed.weight_bytes < dense.weight_bytes
        assert compressed.weight_format is not SparsityFormat.NONE

    def test_resident_activations_cost_nothing(self):
        op = GEMMOp("a", m=100000, n=64, k=64, activations_from_dram=False)
        report = MemoryTrafficModel().traffic(op)
        assert report.activation_bytes == 0.0

    def test_dram_activations_counted(self):
        op = GEMMOp("a", m=100000, n=64, k=64, activations_from_dram=True)
        report = MemoryTrafficModel().traffic(op)
        assert report.activation_bytes > 0.0

    def test_weights_refetched_when_exceeding_buffer(self):
        small_buffer = MemoryTrafficModel(
            weight_buffer=SRAMMacro("tiny", capacity_bytes=1 << 10)
        )
        op = GEMMOp("a", m=10000, n=256, k=256)
        report = small_buffer.traffic(op, tiles_m=100)
        single = MemoryTrafficModel().traffic(op, tiles_m=100)
        assert report.weight_bytes > single.weight_bytes

    def test_transfer_time_and_energy_positive(self):
        op = GEMMOp("a", m=100, n=256, k=256, outputs_to_dram=True)
        model = MemoryTrafficModel()
        report = model.traffic(op)
        assert model.transfer_time_s(report) > 0
        assert model.transfer_energy_j(report) > 0


class TestTrace:
    def _record(self, name, category, time_s, **kwargs):
        return OpRecord(name=name, category=category, time_s=time_s, energy_j=time_s, **kwargs)

    def test_breakdown_fractions_sum_to_one(self):
        trace = ExecutionTrace(device="x", model_name="m")
        trace.add(self._record("g", OpCategory.GEMM, 3.0))
        trace.add(self._record("e", OpCategory.ENCODING, 1.0))
        breakdown = trace.runtime_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown[OpCategory.GEMM] == pytest.approx(0.75)

    def test_empty_trace(self):
        trace = ExecutionTrace(device="x", model_name="m")
        assert trace.total_time_s == 0.0
        assert all(v == 0.0 for v in trace.runtime_breakdown().values())
        assert trace.average_utilization() == 0.0

    def test_average_utilization_weighted_by_time(self):
        trace = ExecutionTrace(device="x", model_name="m")
        trace.add(self._record("a", OpCategory.GEMM, 1.0, utilization=1.0))
        trace.add(self._record("b", OpCategory.GEMM, 3.0, utilization=0.5))
        assert trace.average_utilization() == pytest.approx(0.625)

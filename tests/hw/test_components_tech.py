"""Tests for the technology node, component library and cost reports."""

import pytest

from repro.hw.components import DEFAULT_LIBRARY, ComponentSpec
from repro.hw.cost import AreaReport, EnergyReport, PowerReport
from repro.hw.tech import TECH_12NM_GPU, TECH_28NM


class TestTechnologyNode:
    def test_cycle_time(self):
        assert TECH_28NM.cycle_time_s == pytest.approx(1.25e-9)

    def test_area_scaling_shrinks_towards_smaller_nodes(self):
        assert TECH_28NM.area_scale_to(TECH_12NM_GPU) < 1.0

    def test_power_scaling_positive(self):
        assert TECH_28NM.dynamic_power_scale_to(TECH_12NM_GPU) > 0.0


class TestComponentLibrary:
    def test_known_components_present(self):
        for name in ("mult4x4", "shifter4", "switch3x3", "pee_lane", "riscv_core"):
            assert name in DEFAULT_LIBRARY

    def test_missing_component_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_LIBRARY.get("warp-drive")

    def test_compose_adds_linearly(self):
        spec = DEFAULT_LIBRARY.compose("block", {"mult4x4": 2, "adder8": 1})
        expected_area = 2 * DEFAULT_LIBRARY.area_um2("mult4x4") + DEFAULT_LIBRARY.area_um2("adder8")
        assert spec.area_um2 == pytest.approx(expected_area)

    def test_times_scales_both_dimensions(self):
        spec = ComponentSpec("x", area_um2=10.0, power_mw=1.0).times(3)
        assert spec.area_um2 == 30.0
        assert spec.power_mw == 3.0

    def test_designware_pee_ratios_match_paper(self):
        """The approximated PEE is ~8.2x smaller and ~12.8x lower power (Section 5.2.1)."""
        approx = DEFAULT_LIBRARY.get("pee_lane")
        exact = DEFAULT_LIBRARY.get("pee_lane_designware")
        assert exact.area_um2 / approx.area_um2 == pytest.approx(8.2, rel=0.05)
        assert exact.power_mw / approx.power_mw == pytest.approx(12.8, rel=0.05)


class TestCostReports:
    def test_area_report_accumulates(self):
        report = AreaReport().add("a", 1.0).add("b", 2.0).add("a", 0.5)
        assert report.total_mm2 == pytest.approx(3.5)
        assert report.fraction("a") == pytest.approx(1.5 / 3.5)

    def test_merged_reports(self):
        merged = AreaReport({"a": 1.0}).merged(AreaReport({"a": 1.0, "b": 2.0}))
        assert merged.breakdown == {"a": 2.0, "b": 2.0}

    def test_scaled_power_report(self):
        report = PowerReport({"core": 2.0}).scaled(0.5)
        assert report.total_w == pytest.approx(1.0)

    def test_energy_report(self):
        report = EnergyReport().add("dram", 1e-3).add("compute", 2e-3)
        assert report.total_j == pytest.approx(3e-3)

    def test_empty_report_fraction_is_zero(self):
        assert AreaReport().fraction("anything") == 0.0

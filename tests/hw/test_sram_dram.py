"""Tests for the SRAM and DRAM models."""

import pytest

from repro.hw.dram import GDDR6_2080TI, LPDDR3
from repro.hw.sram import SRAMMacro


class TestSRAM:
    def test_area_grows_with_capacity(self):
        small = SRAMMacro("s", capacity_bytes=64 << 10)
        large = SRAMMacro("l", capacity_bytes=2 << 20)
        assert large.area_mm2 > small.area_mm2

    def test_energy_per_bit_grows_sublinearly(self):
        small = SRAMMacro("s", capacity_bytes=32 << 10)
        large = SRAMMacro("l", capacity_bytes=32 << 20)
        ratio = large.energy_per_bit_pj / small.energy_per_bit_pj
        assert 1.0 < ratio < 1024  # sqrt scaling, not linear

    def test_banking_reduces_access_energy(self):
        flat = SRAMMacro("f", capacity_bytes=2 << 20, banks=1)
        banked = SRAMMacro("b", capacity_bytes=2 << 20, banks=8)
        assert banked.energy_per_bit_pj < flat.energy_per_bit_pj

    def test_access_energy_proportional_to_bits(self):
        macro = SRAMMacro("m", capacity_bytes=512 << 10)
        assert macro.access_energy_j(2000) == pytest.approx(2 * macro.access_energy_j(1000))

    def test_power_includes_leakage(self):
        macro = SRAMMacro("m", capacity_bytes=1 << 20)
        assert macro.power_w(0.0, 800e6) == pytest.approx(macro.leakage_w)
        assert macro.power_w(0.5, 800e6) > macro.leakage_w

    def test_invalid_utilisation(self):
        with pytest.raises(ValueError):
            SRAMMacro("m", capacity_bytes=1024).dynamic_power_w(1.5, 800e6)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SRAMMacro("m", capacity_bytes=0)


class TestDRAM:
    def test_transfer_time(self):
        assert LPDDR3.transfer_time_s(12.8e9) == pytest.approx(1.0)

    def test_transfer_energy(self):
        energy = LPDDR3.transfer_energy_j(1.0)  # one byte
        assert energy == pytest.approx(8 * 40.0e-12)

    def test_gddr6_is_faster_but_cheaper_per_bit(self):
        assert GDDR6_2080TI.bandwidth_gbps > LPDDR3.bandwidth_gbps
        assert GDDR6_2080TI.energy_per_bit_pj < LPDDR3.energy_per_bit_pj

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            LPDDR3.transfer_time_s(-1)
        with pytest.raises(ValueError):
            LPDDR3.transfer_energy_j(-1)

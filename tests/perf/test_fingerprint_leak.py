"""End-to-end proof of the STORE001 hazard and its fix.

The rule's claim is behavioural, not stylistic: a device adapter whose
``__init__`` sets a knob that ``_fingerprint_state()`` never emits will
(a) trip STORE001 and (b) *actually* replay a stale result from the
persistent store, because both configurations collide on one cache key.
This module pins both halves against the same fixture source: the file is
written to disk once, linted by ``repro.analysis`` AND imported as a live
module, so the rule and the store demo are guaranteed to judge identical
code.  A corrected adapter in the same file shows the fix clearing both
the rule and the stale hit.
"""

import importlib.util

import pytest

from repro.analysis import run_lint
from repro.nerf.models import FrameConfig, get_model
from repro.perf.store import ResultStore, StoreKey, workload_digest

FIXTURE_SOURCE = '''\
"""A deliberately cache-unsafe device adapter (STORE001 demo fixture)."""

import dataclasses
from typing import Any

from repro.core.device import Device, FlexNeRFerDevice


class LeakyDevice(Device):
    """Scales latency by ``gain`` -- which never reaches the cache key."""

    name = "leaky"

    def __init__(self, gain: float = 1.0) -> None:
        self.gain = gain
        self.inner = FlexNeRFerDevice()

    def _fingerprint_state(self) -> dict[str, Any]:
        return {"inner": self.inner.fingerprint()}

    def render_frame(self, workload, *, precision=None, pruning_ratio=0.0):
        report = self.inner.render_frame(
            workload, precision=precision, pruning_ratio=pruning_ratio
        )
        return dataclasses.replace(
            report, latency_s=report.latency_s * self.gain
        )


class FixedDevice(LeakyDevice):
    """The corrected adapter: ``gain`` feeds the fingerprint."""

    name = "fixed"

    def __init__(self, gain: float = 1.0) -> None:
        super().__init__(gain)
        self.gain = gain

    def _fingerprint_state(self) -> dict[str, Any]:
        return {**super()._fingerprint_state(), "gain": self.gain}
'''

WORKLOAD = get_model("instant-ngp").build_workload(
    FrameConfig(image_width=100, image_height=100)
)


def _key(device):
    return StoreKey(
        device_fingerprint=device.fingerprint(),
        workload_digest=workload_digest(WORKLOAD),
        precision="INT16",
        pruning_ratio=0.0,
    )


@pytest.fixture()
def fixture(tmp_path):
    """The fixture source on disk plus the same source as a live module."""
    tree = tmp_path / "tree"
    tree.mkdir()
    path = tree / "leaky_device.py"
    path.write_text(FIXTURE_SOURCE)
    spec = importlib.util.spec_from_file_location("store001_fixture", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return tree, module


class TestStore001EndToEnd:
    def test_rule_flags_exactly_the_leaky_knob(self, fixture):
        tree, _ = fixture
        report = run_lint(tree, rule_ids=["STORE001"])
        assert [f.rule_id for f in report.findings] == ["STORE001"]
        (finding,) = report.findings
        assert "LeakyDevice" in finding.message
        assert "'gain'" in finding.message
        # The corrected subclass is clean: its override unions with the
        # inherited fingerprint, covering both behavioural attributes.
        assert "FixedDevice" not in finding.message

    def test_leak_causes_a_demonstrably_stale_warm_hit(self, fixture, tmp_path):
        _, m = fixture
        store = ResultStore(tmp_path / "store")
        honest = m.LeakyDevice(gain=1.0)
        doubled = m.LeakyDevice(gain=2.0)
        # The leak: two behaviourally different devices share one key.
        assert honest.fingerprint() == doubled.fingerprint()

        cold = honest.render_frame(WORKLOAD)
        store.put(_key(honest), cold)

        stale = store.get(_key(doubled))
        assert stale is not None  # warm path replays the gain=1.0 result
        assert stale.latency_s == cold.latency_s
        fresh = doubled.render_frame(WORKLOAD)
        assert fresh.latency_s == pytest.approx(2.0 * cold.latency_s)
        assert stale.latency_s != fresh.latency_s  # i.e. the hit is WRONG

    def test_fingerprinting_the_knob_partitions_the_store(self, fixture, tmp_path):
        _, m = fixture
        store = ResultStore(tmp_path / "store")
        one = m.FixedDevice(gain=1.0)
        two = m.FixedDevice(gain=2.0)
        assert one.fingerprint() != two.fingerprint()
        store.put(_key(one), one.render_frame(WORKLOAD))
        assert store.get(_key(two)) is None  # miss -> honest cold re-run

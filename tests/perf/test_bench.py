"""The bench harness emits valid, self-consistent BENCH documents.

Timing magnitudes are machine-dependent and not asserted; what is pinned
is structure (schema validation), the skip-simulation promise of the warm
store path, bit-exactness, and the CLI surface (write / validate / error
paths).
"""

import json

import pytest

from repro.experiments import cli
from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    bench_filename,
    bench_hot_path,
    compare_bench,
    load_bench_documents,
    render_compare,
    render_trend,
    repo_revision,
    run_bench,
    trend_report,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def quick_document():
    """One quick bench run shared by the document-shape tests."""
    return run_bench(quick=True)


class TestRunBench:
    def test_document_validates(self, quick_document):
        assert validate_bench(quick_document) == []

    def test_metadata(self, quick_document):
        assert quick_document["schema_version"] == BENCH_SCHEMA_VERSION
        assert quick_document["quick"] is True
        assert quick_document["revision"] == repo_revision()

    def test_warm_store_skips_simulation(self, quick_document):
        sweep = quick_document["sweep"]
        assert sweep["render_calls"] > 0
        assert sweep["warm_store_render_calls"] == 0
        assert sweep["store_hits"] == sweep["render_calls"]
        assert sweep["warm_bit_exact"] is True
        assert sweep["cold_s"] > 0 and sweep["warm_store_s"] > 0

    def test_quick_experiment_section(self, quick_document):
        ids = [row["id"] for row in quick_document["experiments"]]
        assert ids == sorted(set(ids), key=ids.index)  # no duplicates
        assert set(ids) == set(cli_quick_ids())
        assert all(row["wall_time_s"] >= 0 for row in quick_document["experiments"])

    def test_serving_section(self, quick_document):
        serving = quick_document["serving"]
        assert serving["num_requests"] > 0
        assert serving["requests_per_wall_s"] > 0
        assert serving["time_compression"] > 0

    def test_experiment_section_restores_the_engine_store(self, tmp_path):
        from repro.perf.bench import bench_experiments
        from repro.perf.store import ResultStore
        from repro.sim.sweep import get_default_engine

        engine = get_default_engine()
        store = ResultStore(tmp_path)
        engine.attach_store(store)
        try:
            bench_experiments(quick=True)
            assert engine.store is store
        finally:
            engine.attach_store(None)

    def test_hot_path_measures_both_caches(self):
        section = bench_hot_path(quick=True)
        for name in ("tiling", "operand_bytes"):
            assert section[name]["cached_s_per_call"] > 0
            assert section[name]["uncached_s_per_call"] > 0
            assert section[name]["speedup"] > 0

    def test_hot_path_measures_scene_and_fleet_kernels(self, quick_document):
        hot = quick_document["hot_path"]
        scene = hot["scene_density"]
        assert scene["num_points"] > 0
        assert scene["batched_s_per_call"] > 0
        assert scene["reference_s_per_call"] > 0
        assert scene["speedup"] > 0
        fleet = hot["fleet_dispatch"]
        assert fleet["num_requests"] > 0
        assert fleet["requests_per_wall_s"] > 0
        assert fleet["speedup"] > 0


def cli_quick_ids():
    from repro.perf.bench import QUICK_EXPERIMENT_IDS

    return QUICK_EXPERIMENT_IDS


class TestValidateBench:
    def test_rejects_non_object(self):
        assert validate_bench([1, 2]) != []
        assert validate_bench(None) != []

    def test_reports_missing_keys(self, quick_document):
        broken = dict(quick_document)
        del broken["sweep"]
        assert any("sweep" in p for p in validate_bench(broken))

    def test_reports_schema_drift(self, quick_document):
        drifted = dict(quick_document)
        drifted["schema_version"] = BENCH_SCHEMA_VERSION + 1
        assert any("drift" in p for p in validate_bench(drifted))

    def test_reports_missing_section_fields(self, quick_document):
        broken = dict(quick_document)
        broken["sweep"] = {k: v for k, v in broken["sweep"].items() if k != "cold_s"}
        assert any("cold_s" in p for p in validate_bench(broken))

    def test_reports_missing_bit_exact_flag(self, quick_document):
        broken = dict(quick_document)
        broken["sweep"] = {
            k: v for k, v in broken["sweep"].items() if k != "warm_bit_exact"
        }
        assert any("warm_bit_exact" in p for p in validate_bench(broken))

    def test_reports_bad_hot_path(self, quick_document):
        broken = dict(quick_document)
        broken["hot_path"] = {"tiling": {}}
        problems = validate_bench(broken)
        assert any("tiling" in p for p in problems)

    def test_every_hot_path_section_is_optional(self, quick_document):
        # Committed trajectory points span emitter generations: older ones
        # lack scene_density / fleet_dispatch, and a future emitter may
        # rename tiling / operand_bytes.  Any subset must keep validating.
        old_style = json.loads(json.dumps(quick_document))
        old_style["hot_path"].pop("scene_density")
        old_style["hot_path"].pop("fleet_dispatch")
        assert validate_bench(old_style) == []
        minimal = json.loads(json.dumps(quick_document))
        minimal["hot_path"] = {}
        assert validate_bench(minimal) == []

    def test_unknown_hot_path_sections_are_tolerated(self, quick_document):
        # ... and a *newer* emitter's extra microbenchmarks validate here
        # as long as they carry the one field every section promises.
        newer = json.loads(json.dumps(quick_document))
        newer["hot_path"]["ray_marcher"] = {"speedup": 3.0}
        assert validate_bench(newer) == []
        newer["hot_path"]["ray_marcher"] = {"num_rays": 64}
        assert any("ray_marcher" in p for p in validate_bench(newer))

    def test_malformed_optional_section_rejected(self, quick_document):
        broken = json.loads(json.dumps(quick_document))
        broken["hot_path"]["scene_density"] = {"num_points": 3}
        assert any("scene_density" in p for p in validate_bench(broken))


class TestWriteBench:
    def test_writes_into_directory(self, quick_document, tmp_path):
        path = write_bench(quick_document, tmp_path)
        assert path == tmp_path / bench_filename(quick_document["revision"])
        assert validate_bench(json.loads(path.read_text())) == []

    def test_creates_missing_directory(self, quick_document, tmp_path):
        path = write_bench(quick_document, tmp_path / "nested" / "dir")
        assert path.parent == tmp_path / "nested" / "dir"
        assert path.exists()

    def test_explicit_json_path(self, quick_document, tmp_path):
        path = write_bench(quick_document, tmp_path / "point.json")
        assert path == tmp_path / "point.json"
        assert json.loads(path.read_text())["schema"] == "repro-bench"


class TestBenchCLI:
    def test_bench_quick_out(self, tmp_path, capsys):
        assert cli.main(["bench", "--quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "sweep:" in out and "serving:" in out
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        assert validate_bench(json.loads(files[0].read_text())) == []

    def test_validate_ok(self, quick_document, tmp_path, capsys):
        path = write_bench(quick_document, tmp_path)
        assert cli.main(["bench", "--validate", str(path)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_validate_drift_fails(self, quick_document, tmp_path, capsys):
        drifted = dict(quick_document)
        drifted["schema_version"] = BENCH_SCHEMA_VERSION + 1
        path = tmp_path / "drifted.json"
        path.write_text(json.dumps(drifted))
        assert cli.main(["bench", "--validate", str(path)]) == 1
        assert "drift" in capsys.readouterr().err

    def test_validate_missing_file(self, tmp_path, capsys):
        assert cli.main(["bench", "--validate", str(tmp_path / "nope.json")]) == 2
        assert "no such BENCH file" in capsys.readouterr().err

    def test_validate_directory_exits_2(self, tmp_path, capsys):
        # A natural slip: passing the --out directory instead of the file.
        assert cli.main(["bench", "--validate", str(tmp_path)]) == 2
        assert "cannot read BENCH file" in capsys.readouterr().err

    def test_validate_bad_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{ nope")
        assert cli.main(["bench", "--validate", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_option(self, capsys):
        assert cli.main(["bench", "--frobnicate", "1"]) == 2
        assert "unknown option" in capsys.readouterr().err


def variant_of(document, **edits):
    """A deep-ish copy of ``document`` with top-level section dicts replaced."""
    clone = json.loads(json.dumps(document))
    for dotted, value in edits.items():
        node = clone
        parts = dotted.split("__")
        for part in parts[:-1]:
            node = node[part]
        node[parts[-1]] = value
    return clone


class TestCompareBench:
    def test_reports_deltas_and_regressions(self, quick_document):
        slower = variant_of(
            quick_document,
            revision="other",
            sweep__cold_s=quick_document["sweep"]["cold_s"] * 2,
        )
        comparison = compare_bench(quick_document, slower)
        assert comparison["baseline_revision"] == quick_document["revision"]
        assert comparison["current_revision"] == "other"
        by_metric = {row["metric"]: row for row in comparison["metrics"]}
        cold = by_metric["sweep.cold_s"]
        assert cold["regression"] is True
        assert cold["delta_pct"] == pytest.approx(100.0)
        # A *higher* speedup is an improvement, not a regression.
        assert by_metric["sweep.warm_store_speedup"]["regression"] is False
        ids = {row["id"] for row in comparison["experiments"]}
        assert ids == {row["id"] for row in quick_document["experiments"]}
        assert comparison["unmatched_experiments"] == []

    def test_mismatched_quick_flags_rejected(self, quick_document):
        full = variant_of(quick_document, quick=False)
        with pytest.raises(ValueError, match="quick"):
            compare_bench(quick_document, full)

    def test_compare_spans_hot_path_generations(self, quick_document):
        # An old point (no tiling / operand_bytes) against a new full one:
        # the shared metrics are compared, the mismatched hot_path
        # sections are skipped rather than failing validation.
        old_point = variant_of(quick_document, revision="old")
        old_point["hot_path"] = {
            "scene_density": old_point["hot_path"]["scene_density"]
        }
        comparison = compare_bench(old_point, quick_document)
        metrics = {row["metric"] for row in comparison["metrics"]}
        assert "sweep.cold_s" in metrics
        assert "hot_path.scene_density.speedup" in metrics
        assert "hot_path.tiling.speedup" not in metrics
        assert "hot_path.fleet_dispatch.speedup" not in metrics

    def test_invalid_document_rejected(self, quick_document):
        broken = variant_of(quick_document)
        del broken["sweep"]
        with pytest.raises(ValueError, match="not a valid BENCH"):
            compare_bench(quick_document, broken)

    def test_platform_mismatch_warns(self, quick_document):
        other = variant_of(quick_document, platform="hypothetical-os")
        comparison = compare_bench(quick_document, other)
        assert any("platform differs" in w for w in comparison["warnings"])

    def test_render_lists_metrics(self, quick_document):
        text = render_compare(compare_bench(quick_document, quick_document))
        assert "sweep.cold_s" in text
        assert "regression" not in text  # identical documents regress nothing

    def test_cli_compare(self, quick_document, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(quick_document))
        b.write_text(
            json.dumps(
                variant_of(
                    quick_document,
                    sweep__cold_s=quick_document["sweep"]["cold_s"] * 2,
                )
            )
        )
        assert cli.main(["bench", "--compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "BENCH compare" in out and "sweep.cold_s" in out

    def test_cli_compare_needs_two_paths(self, tmp_path, capsys):
        assert cli.main(["bench", "--compare", str(tmp_path / "a.json")]) == 2
        assert "two BENCH file paths" in capsys.readouterr().err

    def test_cli_compare_mismatch_exits_2(self, quick_document, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(quick_document))
        b.write_text(json.dumps(variant_of(quick_document, quick=False)))
        assert cli.main(["bench", "--compare", str(a), str(b)]) == 2
        assert "quick" in capsys.readouterr().err


class TestTrend:
    def make_point(self, quick_document, revision, created, **edits):
        point = variant_of(quick_document, revision=revision, **edits)
        point["created_utc"] = created
        return point

    def test_load_orders_by_created_and_skips_invalid(
        self, quick_document, tmp_path
    ):
        newer = self.make_point(quick_document, "bbb", "2026-08-08T10:00:00Z")
        older = self.make_point(quick_document, "aaa", "2026-08-01T10:00:00Z")
        (tmp_path / "BENCH_bbb.json").write_text(json.dumps(newer))
        (tmp_path / "BENCH_aaa.json").write_text(json.dumps(older))
        (tmp_path / "BENCH_junk.json").write_text("{ nope")
        drifted = variant_of(quick_document, schema_version=BENCH_SCHEMA_VERSION + 1)
        (tmp_path / "BENCH_drift.json").write_text(json.dumps(drifted))
        documents = load_bench_documents(tmp_path)
        assert [doc["revision"] for _, doc in documents] == ["aaa", "bbb"]

    def test_deltas_are_direction_aware(self, quick_document):
        first = self.make_point(quick_document, "aaa", "2026-08-01T10:00:00Z")
        second = self.make_point(
            quick_document,
            "bbb",
            "2026-08-08T10:00:00Z",
            sweep__cold_s=quick_document["sweep"]["cold_s"] * 2,
            serving__requests_per_wall_s=(
                quick_document["serving"]["requests_per_wall_s"] * 2
            ),
        )
        report = trend_report([first, second])
        assert len(report["points"]) == 2
        assert report["points"][0]["deltas"] == {}
        deltas = report["points"][1]["deltas"]
        # Cold sweep doubled: lower-is-better, so that's a regression.
        assert deltas["sweep cold s"]["regression"] is True
        assert deltas["sweep cold s"]["delta_pct"] == pytest.approx(100.0)
        # Serving throughput doubled: higher-is-better, an improvement.
        assert deltas["serving req/s"]["regression"] is False

    def test_quick_and_full_points_never_compared(self, quick_document):
        quick_point = self.make_point(quick_document, "aaa", "2026-08-01T10:00:00Z")
        full_point = self.make_point(
            quick_document, "bbb", "2026-08-08T10:00:00Z", quick=False
        )
        report = trend_report([quick_point, full_point])
        assert report["points"][1]["deltas"] == {}

    def test_missing_experiment_renders_as_dash(self, quick_document):
        point = self.make_point(
            quick_document, "aaa", "2026-08-01T10:00:00Z", experiments=[]
        )
        report = trend_report([point])
        assert report["points"][0]["values"]["fig13 s"] is None
        text = render_trend(report)
        assert "aaa" in text and " - " in text

    def test_render_marks_regressions(self, quick_document):
        first = self.make_point(quick_document, "aaa", "2026-08-01T10:00:00Z")
        second = self.make_point(
            quick_document,
            "bbb",
            "2026-08-08T10:00:00Z",
            sweep__cold_s=quick_document["sweep"]["cold_s"] * 2,
        )
        text = render_trend(trend_report([first, second]))
        assert "vs previous" in text
        assert "!" in text

    def test_trend_spans_hot_path_generations(self, quick_document, tmp_path):
        # A trajectory mixing emitter generations (one point without the
        # tiling / operand_bytes microbenchmarks, one with an extra future
        # section) loads in full and renders one row per point.
        old_point = self.make_point(quick_document, "aaa", "2026-08-01T10:00:00Z")
        old_point["hot_path"] = {}
        new_point = self.make_point(quick_document, "bbb", "2026-08-08T10:00:00Z")
        new_point["hot_path"]["ray_marcher"] = {"speedup": 3.0}
        (tmp_path / "BENCH_aaa.json").write_text(json.dumps(old_point))
        (tmp_path / "BENCH_bbb.json").write_text(json.dumps(new_point))
        documents = [doc for _, doc in load_bench_documents(tmp_path)]
        assert [doc["revision"] for doc in documents] == ["aaa", "bbb"]
        report = trend_report(documents)
        assert len(report["points"]) == 2
        assert report["points"][1]["deltas"]  # still compared across the mix

    def test_render_empty(self):
        assert "no valid BENCH" in render_trend(trend_report([]))

    def test_cli_trend(self, quick_document, tmp_path, capsys):
        point = self.make_point(quick_document, "abc1234", "2026-08-01T10:00:00Z")
        (tmp_path / "BENCH_abc1234.json").write_text(json.dumps(point))
        assert cli.main(["bench", "--trend", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "BENCH trend" in out and "abc1234" in out

    def test_cli_trend_empty_dir_exits_1(self, tmp_path, capsys):
        assert cli.main(["bench", "--trend", "--dir", str(tmp_path)]) == 1
        assert "no valid BENCH" in capsys.readouterr().out

    def test_cli_trend_missing_dir_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert cli.main(["bench", "--trend", "--dir", str(missing)]) == 2
        assert "no such trend directory" in capsys.readouterr().err

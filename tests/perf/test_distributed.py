"""Correctness of distributed sharding and assembly (repro.perf.distributed).

Pins the distribution layer's promises: shard assignment is a pure,
pinned function of a key's content digest (identical across runs and
platforms), shards are disjoint and collectively complete at both the
sweep-point and the experiment granularity, store packs round-trip
bit-exactly with loud conflict detection, and ``repro shard`` x N followed
by ``repro assemble`` reproduces a serial cold ``repro run`` byte-for-byte
(modulo the provenance wall-clock field, which records the producing
run's measurement).
"""

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.registry import EXPERIMENTS
from repro.nerf.models import FrameConfig
from repro.perf.distributed import (
    Shard,
    assemble_packs,
    experiment_result_key,
    normalize_result_json,
    shard_experiments,
    shard_index,
    shard_of,
)
from repro.perf.store import (
    PACK_SCHEMA,
    PACK_SCHEMA_VERSION,
    MergeStats,
    PackConflictError,
    ResultStore,
)
from repro.sim.sweep import SweepEngine, SweepSpec
from repro.sparse.formats import Precision

from tests._differential import assert_text_matches_modulo_wall_time

SMALL_SPEC = SweepSpec(
    devices=("flexnerfer", "neurex"),
    models=("instant-ngp",),
    precisions=(None, Precision.INT8),
    pruning_ratios=(0.0, 0.5),
    base_config=FrameConfig(image_width=100, image_height=100),
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(autouse=True)
def _detach_default_store():
    """Shard/assemble CLI runs attach stores to the shared engine; detach
    after each test so other modules keep the pure in-memory path."""
    yield
    from repro.sim.sweep import get_default_engine

    get_default_engine().attach_store(None)


def populate_store(root) -> ResultStore:
    """A store holding the small reference sweep's frame entries."""
    store = ResultStore(root)
    SweepEngine(store=store).run(SMALL_SPEC)
    return store


class TestShardAssignment:
    def test_pinned_assignments(self):
        # int(digest[:16], 16) % count -- pinned so the partition function
        # can never drift silently (old shard artifacts would misassemble).
        assert shard_index("0" * 40, 4) == 0
        assert shard_index("f" * 40, 4) == (16**16 - 1) % 4
        assert shard_index("123456789abcdef0" + "0" * 24, 7) == (
            0x123456789ABCDEF0 % 7
        )

    def test_accepts_keys_and_digests(self):
        engine = SweepEngine()
        workload = engine.workload("instant-ngp", SMALL_SPEC.base_config)
        key = engine.frame_store_key("flexnerfer", workload)
        assert shard_index(key, 5) == shard_index(key.digest, 5)

    def test_deterministic_across_engines(self):
        digests = []
        for _ in range(2):
            engine = SweepEngine()
            workload = engine.workload("instant-ngp", SMALL_SPEC.base_config)
            digests.append(
                engine.frame_store_key(
                    "flexnerfer", workload, precision=Precision.INT8
                ).digest
            )
        assert digests[0] == digests[1]

    def test_exactly_one_shard_owns_each_key(self):
        for salt in range(20):
            digest = f"{salt:040x}"
            owners = [i for i in range(4) if shard_of(digest, i, 4)]
            assert len(owners) == 1
            assert owners[0] == shard_index(digest, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_index("ab" * 20, 0)
        with pytest.raises(ValueError):
            shard_of("ab" * 20, 4, 4)
        with pytest.raises(ValueError):
            Shard(-1, 4)
        with pytest.raises(ValueError):
            Shard(0, 0)
        with pytest.raises(TypeError):
            shard_index(object(), 4)

    def test_shard_unpacks_as_tuple(self):
        index, count = Shard(2, 5)
        assert (index, count) == (2, 5)


class TestSweepSharding:
    def row_key(self, row):
        return (
            row.device,
            row.model,
            row.precision,
            row.pruning_ratio,
            row.batch_size,
            row.scene,
        )

    def test_shards_are_disjoint_and_complete_and_bit_exact(self):
        full = {
            self.row_key(r): (r.latency_s, r.energy_j)
            for r in SweepEngine().run(SMALL_SPEC)
        }
        union: dict = {}
        total = 0
        for i in range(3):
            rows = SweepEngine().run(SMALL_SPEC, shard=Shard(i, 3))
            total += len(rows)
            union.update(
                {self.row_key(r): (r.latency_s, r.energy_j) for r in rows}
            )
        assert total == len(full)  # disjoint: no point simulated twice
        assert union == full  # complete and bit-exact

    def test_single_shard_is_the_full_sweep(self):
        assert len(SweepEngine().run(SMALL_SPEC, shard=(0, 1))) == len(
            SweepEngine().run(SMALL_SPEC)
        )

    def test_shard_assignment_is_stable_across_runs(self):
        first = [
            self.row_key(r) for r in SweepEngine().run(SMALL_SPEC, shard=(1, 3))
        ]
        second = [
            self.row_key(r) for r in SweepEngine().run(SMALL_SPEC, shard=(1, 3))
        ]
        assert first == second

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine().run(SMALL_SPEC, shard=(3, 3))


class TestExperimentSharding:
    def test_disjoint_and_complete_over_the_registry(self):
        experiments = list(EXPERIMENTS.values())
        seen: list[str] = []
        for i in range(4):
            seen += [
                e.id for e in shard_experiments(experiments, Shard(i, 4))
            ]
        assert sorted(seen) == sorted(EXPERIMENTS)  # each id exactly once

    def test_overrides_change_the_key_deterministically(self):
        exp = EXPERIMENTS["fig19"]
        base = experiment_result_key(exp)
        overridden = experiment_result_key(exp, {"pruning_ratios": (0.0,)})
        assert base.digest != overridden.digest
        assert (
            experiment_result_key(exp, {"pruning_ratios": (0.0,)}).digest
            == overridden.digest
        )


class TestPackRoundTrip:
    def test_export_then_merge_is_bit_exact(self, tmp_path):
        source = populate_store(tmp_path / "a")
        pack = source.export_pack(tmp_path / "a.pack.json")
        target = ResultStore(tmp_path / "b")
        stats = target.merge_from(pack)
        assert stats.added == source.stats().entries > 0
        assert stats.identical == 0 and not stats.conflicts
        engine = SweepEngine(store=target)
        rows = engine.run(SMALL_SPEC)
        assert engine.stats.render_calls == 0  # every report replayed
        reference = SweepEngine(store=source).run(SMALL_SPEC)
        for ours, theirs in zip(rows, reference):
            assert ours.report.latency_s == theirs.report.latency_s
            assert ours.report.energy_j == theirs.report.energy_j

    def test_remerge_identical_is_last_write_wins(self, tmp_path):
        source = populate_store(tmp_path / "a")
        pack = source.export_pack(tmp_path / "a.pack.json")
        target = ResultStore(tmp_path / "b")
        target.merge_from(pack)
        stats = target.merge_from(pack)
        assert stats.added == 0
        assert stats.identical == source.stats().entries
        assert not stats.conflicts

    def test_merge_from_store_directory(self, tmp_path):
        source = populate_store(tmp_path / "a")
        target = ResultStore(tmp_path / "b")
        stats = target.merge_from(tmp_path / "a")
        assert stats.added == source.stats().entries

    def test_empty_store_exports_an_empty_pack(self, tmp_path):
        pack = ResultStore(tmp_path / "empty").export_pack(tmp_path / "e.json")
        document = json.loads(pack.read_text())
        assert document["schema"] == PACK_SCHEMA
        assert document["pack_schema_version"] == PACK_SCHEMA_VERSION
        assert document["entries"] == []
        assert ResultStore(tmp_path / "b").merge_from(pack) == MergeStats()

    def test_merge_stats_combine_and_serialize(self):
        combined = MergeStats(added=1, conflicts=("x",)).combined(
            MergeStats(identical=2, skipped=3)
        )
        assert combined == MergeStats(
            added=1, identical=2, skipped=3, conflicts=("x",)
        )
        assert combined.to_dict()["conflicts"] == ["x"]


class TestConflictDetection:
    def corrupt_one_entry(self, root) -> str:
        """Flip one stored latency in ``root``'s frame tier; returns the path."""
        store = ResultStore(root)
        path = next(
            p for p in sorted(root.rglob("*.json")) if "/frame/" in str(p)
        )
        document = json.loads(path.read_text())
        document["report"]["latency_s"] += 1.0
        path.write_text(json.dumps(document))
        return str(path.relative_to(store.root / f"v{store.schema_version}"))

    def test_diverging_content_raises(self, tmp_path):
        source = populate_store(tmp_path / "a")
        pack = source.export_pack(tmp_path / "a.pack.json")
        target = ResultStore(tmp_path / "b")
        target.merge_from(pack)
        rel = self.corrupt_one_entry(tmp_path / "b")
        with pytest.raises(PackConflictError) as excinfo:
            target.merge_from(pack)
        assert rel in excinfo.value.conflicts

    def test_non_strict_merge_keeps_target_and_reports(self, tmp_path):
        source = populate_store(tmp_path / "a")
        pack = source.export_pack(tmp_path / "a.pack.json")
        target = ResultStore(tmp_path / "b")
        target.merge_from(pack)
        rel = self.corrupt_one_entry(tmp_path / "b")
        corrupted = (tmp_path / "b" / f"v{target.schema_version}" / rel).read_text()
        stats = target.merge_from(pack, strict=False)
        assert stats.conflicts == (rel,)
        assert (
            tmp_path / "b" / f"v{target.schema_version}" / rel
        ).read_text() == corrupted  # target kept its own entry

    def test_timestamps_do_not_conflict(self, tmp_path):
        source = populate_store(tmp_path / "a")
        pack = source.export_pack(tmp_path / "a.pack.json")
        target = ResultStore(tmp_path / "b")
        target.merge_from(pack)
        # Rewrite one target entry with only its created_s changed.
        path = next(p for p in sorted((tmp_path / "b").rglob("*.json")))
        document = json.loads(path.read_text())
        document["created_s"] = 1.0
        path.write_text(json.dumps(document))
        assert not target.merge_from(pack).conflicts


class TestPackValidation:
    def test_missing_pack_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no such pack"):
            ResultStore(tmp_path / "s").merge_from(tmp_path / "nope.json")

    def test_non_pack_json_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="not a result-store pack"):
            ResultStore(tmp_path / "s").merge_from(bogus)

    def test_foreign_store_schema_rejected(self, tmp_path):
        pack = populate_store(tmp_path / "a").export_pack(tmp_path / "p.json")
        document = json.loads(pack.read_text())
        document["store_schema_version"] += 1
        pack.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="store schema"):
            ResultStore(tmp_path / "b").merge_from(pack)

    def test_traversal_and_malformed_entries_are_skipped(self, tmp_path):
        pack = tmp_path / "evil.json"
        pack.write_text(
            json.dumps(
                {
                    "schema": PACK_SCHEMA,
                    "pack_schema_version": PACK_SCHEMA_VERSION,
                    "store_schema_version": 1,
                    "entries": [
                        {"path": "../../escape.json", "document": {"schema_version": 1}},
                        {"path": "/abs.json", "document": {"schema_version": 1}},
                        {"path": "..\\..\\win.json", "document": {"schema_version": 1}},
                        {"path": "C:/drive.json", "document": {"schema_version": 1}},
                        {"path": "frame/../../up.json", "document": {"schema_version": 1}},
                        {"path": ".", "document": {"schema_version": 1}},
                        {"path": "frame/ok.json", "document": {"schema_version": 99}},
                        {"path": "frame/ok2.json", "document": "not-a-dict"},
                        "not-an-entry",
                    ],
                }
            )
        )
        stats = ResultStore(tmp_path / "s").merge_from(pack)
        assert stats == MergeStats(skipped=8)
        for name in ("escape.json", "win.json", "drive.json", "up.json"):
            assert not (tmp_path / name).exists()


class TestShardAssembleCLI:
    IDS = ("fig04", "fig16")

    def shard_and_assemble(self, capsys, monkeypatch, tmp_path, count=3):
        """Serial cold run + N shard runs + assemble; returns both out dirs."""
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "serial-store"))
        code, _, _ = run_cli(
            capsys,
            "run",
            *self.IDS,
            "--format",
            "json",
            "--out",
            str(tmp_path / "serial-out"),
        )
        assert code == 0

        packs = []
        shard_sizes = []
        for i in range(count):
            pack = tmp_path / f"pack-{i}.json"
            code, out, _ = run_cli(
                capsys,
                "shard",
                *self.IDS,
                "--index",
                str(i),
                "--count",
                str(count),
                "--store",
                str(tmp_path / f"shard-store-{i}"),
                "--pack",
                str(pack),
            )
            assert code == 0
            assert f"shard {i}/{count}:" in out
            shard_sizes.append(
                int(out.split(f"shard {i}/{count}: ")[1].split(" of ")[0])
            )
            packs.append(str(pack))
        assert sum(shard_sizes) == len(self.IDS)  # disjoint and complete

        code, out, err = run_cli(
            capsys,
            "assemble",
            *packs,
            "--store",
            str(tmp_path / "assembled-store"),
            "--run",
            ",".join(self.IDS),
            "--out",
            str(tmp_path / "assembled-out"),
            "--check",
            str(tmp_path / "serial-out"),
        )
        assert code == 0, err
        assert "assembled output matches" in out
        return tmp_path / "serial-out", tmp_path / "assembled-out"

    def test_assembled_replay_matches_serial_cold_run(
        self, capsys, monkeypatch, tmp_path
    ):
        serial_out, assembled_out = self.shard_and_assemble(
            capsys, monkeypatch, tmp_path
        )
        for exp_id in self.IDS:
            serial = (serial_out / f"{exp_id}.json").read_text()
            assembled = (assembled_out / f"{exp_id}.json").read_text()
            assert_text_matches_modulo_wall_time(serial, assembled, exp_id)

    def test_check_flags_a_divergent_reference(
        self, capsys, monkeypatch, tmp_path
    ):
        serial_out, _ = self.shard_and_assemble(capsys, monkeypatch, tmp_path)
        doctored = (serial_out / "fig04.json").read_text().replace("fig04", "figXX")
        (serial_out / "fig04.json").write_text(doctored)
        code, _, err = run_cli(
            capsys,
            "assemble",
            str(tmp_path / "pack-0.json"),
            "--store",
            str(tmp_path / "assembled-store"),
            "--run",
            ",".join(self.IDS),
            "--check",
            str(serial_out),
        )
        assert code == 1
        assert "differs" in err

    def test_shard_requires_index_and_count(self, capsys):
        code, _, err = run_cli(capsys, "shard", "all")
        assert code == 2 and "--index" in err
        code, _, err = run_cli(capsys, "shard", "all", "--index", "0")
        assert code == 2 and "--count" in err

    def test_shard_rejects_out_of_range_index(self, capsys):
        code, _, err = run_cli(
            capsys, "shard", "all", "--index", "4", "--count", "4"
        )
        assert code == 2 and "shard index" in err

    def test_shard_rejects_unknown_experiment(self, capsys):
        code, _, err = run_cli(
            capsys, "shard", "nope", "--index", "0", "--count", "2"
        )
        assert code == 2 and err.startswith("error:")

    def test_assemble_requires_packs(self, capsys):
        code, _, err = run_cli(capsys, "assemble")
        assert code == 2 and "no shard packs" in err

    def test_assemble_rejects_missing_pack(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "assemble",
            str(tmp_path / "missing.json"),
            "--store",
            str(tmp_path / "s"),
        )
        assert code == 2 and "no such pack" in err

    def test_assemble_no_run_merges_only(self, capsys, tmp_path):
        pack = populate_store(tmp_path / "a").export_pack(tmp_path / "p.json")
        code, out, _ = run_cli(
            capsys,
            "assemble",
            str(pack),
            "--store",
            str(tmp_path / "b"),
            "--no-run",
        )
        assert code == 0
        assert "merged 1 pack(s)" in out
        assert ResultStore(tmp_path / "b").stats().entries > 0

    def test_shard_and_assemble_with_param_overrides(
        self, capsys, monkeypatch, tmp_path
    ):
        # Overrides are part of the result-tier key: the assemble replay
        # passed the same flags must be store-warm (zero recompute) and
        # match the shard runs' output.
        flags = ("--models", "nerf")
        packs = []
        for i in range(2):
            code, _, _ = run_cli(
                capsys,
                "shard",
                "fig16",
                "fig19",
                *flags,
                "--index",
                str(i),
                "--count",
                "2",
                "--store",
                str(tmp_path / f"s{i}"),
                "--pack",
                str(tmp_path / f"p{i}.json"),
            )
            assert code == 0
            packs.append(str(tmp_path / f"p{i}.json"))
        code, out, err = run_cli(
            capsys,
            "assemble",
            *packs,
            *flags,
            "--store",
            str(tmp_path / "asm"),
            "--run",
            "fig16,fig19",
            "--format",
            "json",
        )
        assert code == 0, err
        rendered = out[out.index("[") :]  # skip the "merged ..." status line
        payload = {r["experiment_id"]: r for r in json.loads(rendered)}
        assert set(payload) == {"fig16", "fig19"}
        # Replayed from the result tier, not recomputed: params stuck.
        assert payload["fig19"]["provenance"]["params"]["models"] == ["nerf"]
        from repro.sim.sweep import get_default_engine

        assert get_default_engine().store is not None

    def test_assemble_rejects_params_with_no_run(self, capsys, tmp_path):
        pack = populate_store(tmp_path / "a").export_pack(tmp_path / "p.json")
        code, _, err = run_cli(
            capsys,
            "assemble",
            str(pack),
            "--store",
            str(tmp_path / "b"),
            "--no-run",
            "--models",
            "nerf",
        )
        assert code == 2
        assert "drop --no-run" in err

    def test_assemble_surfaces_conflicts_as_cli_error(self, capsys, tmp_path):
        source = populate_store(tmp_path / "a")
        pack = source.export_pack(tmp_path / "p.json")
        target_root = tmp_path / "b"
        ResultStore(target_root).merge_from(pack)
        path = next(
            p for p in sorted(target_root.rglob("*.json")) if "/frame/" in str(p)
        )
        document = json.loads(path.read_text())
        document["report"]["latency_s"] += 1.0
        path.write_text(json.dumps(document))
        code, _, err = run_cli(
            capsys,
            "assemble",
            str(pack),
            "--store",
            str(target_root),
            "--no-run",
        )
        assert code == 2
        assert "conflicting store entr" in err


class TestNormalization:
    def test_masks_only_wall_time(self):
        text = json.dumps(
            {"provenance": {"wall_time_s": 1.25e-03, "repo_version": "1.2.0"}},
            indent=2,
        )
        normalized = normalize_result_json(text)
        assert '"wall_time_s": 0.0' in normalized
        assert '"repo_version": "1.2.0"' in normalized
        assert normalize_result_json(normalized) == normalized


class TestAssemblePacksAPI:
    def test_accumulates_over_packs(self, tmp_path):
        first = populate_store(tmp_path / "a")
        pack_a = first.export_pack(tmp_path / "a.json")
        pack_b = first.export_pack(tmp_path / "b.json")
        target = ResultStore(tmp_path / "t")
        stats = assemble_packs(target, [pack_a, pack_b])
        assert stats.added == first.stats().entries
        assert stats.identical == first.stats().entries

"""Correctness of the persistent result store (repro.perf.store).

Pins the store's core promises: fingerprint changes on device / workload /
schema edits address different entries, warm-path results are bit-exact
vs. the cold path (down to per-op trace records), concurrent writers never
corrupt the store, and eviction / clearing behave as documented.
"""

import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.device import FlexNeRFerDevice, TPUDevice, get_device
from repro.core.config import FlexNeRFerConfig
from repro.nerf.models import FrameConfig, get_model
from repro.perf.store import (
    STORE_SCHEMA_VERSION,
    ExperimentResultKey,
    ResultStore,
    StoreKey,
    device_registry_digest,
    report_from_dict,
    report_to_dict,
    workload_digest,
)
from repro.sim.sweep import SweepEngine, SweepSpec
from repro.sparse.formats import Precision

SMALL = FrameConfig(image_width=100, image_height=100)


def small_workload(model="instant-ngp", config=SMALL):
    return get_model(model).build_workload(config)


def render_small(device_name="flexnerfer"):
    return get_device(device_name).render_frame(small_workload())


def make_key(salt="a"):
    return StoreKey(
        device_fingerprint=f"fp-{salt}",
        workload_digest=f"wl-{salt}",
        precision="INT16",
        pruning_ratio=0.0,
    )


class TestSerialization:
    def test_round_trip_is_bit_exact(self):
        report = render_small()
        clone = report_from_dict(json.loads(json.dumps(report_to_dict(report))))
        assert clone.device == report.device
        assert clone.model_name == report.model_name
        assert clone.latency_s == report.latency_s
        assert clone.energy_j == report.energy_j
        assert clone.precision == report.precision
        assert clone.extra == report.extra
        assert len(clone.trace.records) == len(report.trace.records)
        for ours, theirs in zip(clone.trace.records, report.trace.records):
            assert ours == theirs  # dataclass equality: every float field

    def test_round_trip_none_precision(self):
        report = render_small("rtx-2080-ti")
        assert report.precision is None
        clone = report_from_dict(report_to_dict(report))
        assert clone.precision is None


class TestFingerprints:
    def test_device_fingerprint_is_stable(self):
        assert TPUDevice().fingerprint() == TPUDevice().fingerprint()
        assert (
            FlexNeRFerDevice().fingerprint() == FlexNeRFerDevice().fingerprint()
        )

    def test_device_edit_changes_fingerprint(self):
        assert TPUDevice().fingerprint() != TPUDevice(rows=32).fingerprint()
        assert (
            TPUDevice().fingerprint()
            != TPUDevice(typical_power_w=3.0).fingerprint()
        )
        assert (
            FlexNeRFerDevice().fingerprint()
            != FlexNeRFerDevice(FlexNeRFerConfig(frequency_hz=1e9)).fingerprint()
        )

    def test_distinct_devices_have_distinct_fingerprints(self):
        prints = {
            name: get_device(name).fingerprint()
            for name in ("flexnerfer", "neurex", "tpu", "nvdla", "rtx-2080-ti")
        }
        assert len(set(prints.values())) == len(prints)

    def test_workload_edit_changes_digest(self):
        base = small_workload()
        assert workload_digest(base) == workload_digest(small_workload())
        bigger = small_workload(
            config=FrameConfig(image_width=200, image_height=100)
        )
        assert workload_digest(base) != workload_digest(bigger)
        assert workload_digest(base) != workload_digest(base.pruned(0.5))
        assert workload_digest(base) != workload_digest(
            base.with_precision(Precision.INT4)
        )

    def test_schema_version_partitions_keys(self):
        key = make_key()
        successor = StoreKey(
            device_fingerprint=key.device_fingerprint,
            workload_digest=key.workload_digest,
            precision=key.precision,
            pruning_ratio=key.pruning_ratio,
            schema_version=STORE_SCHEMA_VERSION + 1,
        )
        assert key.digest != successor.digest

    def test_knobs_partition_keys(self):
        base = make_key()
        assert (
            base.digest
            != StoreKey(base.device_fingerprint, base.workload_digest, "INT8", 0.0).digest
        )
        assert (
            base.digest
            != StoreKey(base.device_fingerprint, base.workload_digest, "INT16", 0.5).digest
        )


class TestStoreBasics:
    def test_get_missing_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get(make_key()) is None

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        report = render_small()
        key = make_key()
        path = store.put(key, report)
        assert path.exists()
        loaded = store.get(key)
        assert loaded is not None
        assert loaded.latency_s == report.latency_s
        assert loaded.energy_j == report.energy_j

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = make_key()
        old = StoreKey(
            key.device_fingerprint,
            key.workload_digest,
            key.precision,
            key.pruning_ratio,
            schema_version=STORE_SCHEMA_VERSION + 1,
        )
        store.put(old, render_small())
        assert store.get(key) is None
        assert store.stats().stale_entries == 1

    def test_unwritable_store_degrades_to_cold(self, capsys):
        store = ResultStore("/dev/null/not-a-dir")
        report = render_small()
        store.put(make_key(), report)  # must not raise
        assert "not writable" in capsys.readouterr().err
        store.put(make_key("b"), report)  # warning printed only once
        assert capsys.readouterr().err == ""
        assert store.get(make_key()) is None
        assert store.stats().entries == 0
        # A store-attached engine still simulates correctly.
        engine = SweepEngine(store=store)
        rows = engine.run(SPEC)
        assert rows and engine.stats.render_calls > 0

    def test_canonical_digest_rejects_unstable_values(self):
        from repro.core.device import canonical_digest

        with pytest.raises(TypeError):
            canonical_digest({"modes": {"INT8", "INT4"}})  # a set
        with pytest.raises(TypeError):
            canonical_digest(object())

    def test_corrupt_entry_is_a_miss_and_healed(self, tmp_path):
        store = ResultStore(tmp_path)
        key = make_key()
        path = store.put(key, render_small())
        path.write_text("{ truncated")
        assert store.get(key) is None
        assert not path.exists()  # dropped so the next put heals the slot
        store.put(key, render_small())
        assert store.get(key) is not None

    def test_stats_clear_and_evict(self, tmp_path):
        store = ResultStore(tmp_path)
        report = render_small()
        paths = [store.put(make_key(str(i)), report) for i in range(5)]
        # Distinct mtimes so eviction order is deterministic.
        for age, path in enumerate(reversed(paths)):
            stamp = os.path.getmtime(path) - 100 * age
            os.utime(path, (stamp, stamp))
        stats = store.stats()
        assert stats.entries == 5
        assert stats.total_bytes > 0

        assert store.evict(max_entries=3) == 2
        assert store.stats().entries == 3
        assert not paths[0].exists() and not paths[1].exists()  # oldest two

        assert store.evict(max_age_s=150.0) == 1  # only paths[2] is older
        assert store.stats().entries == 2

        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_evict_rejects_negative_bounds(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_key(), render_small())
        with pytest.raises(ValueError, match=">= 0"):
            store.evict(max_entries=-1)
        with pytest.raises(ValueError, match=">= 0"):
            store.evict(max_age_s=-5.0)
        assert store.stats().entries == 1  # nothing was doomed

    def test_evict_drops_stale_schemas(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_key(), render_small())
        old = StoreKey("fp", "wl", None, 0.0, schema_version=STORE_SCHEMA_VERSION + 1)
        store.put(old, render_small())
        assert store.evict() == 1
        assert store.stats().entries == 1
        assert store.stats().stale_entries == 0


class TestExperimentResultTier:
    def make_result_key(self, salt="a"):
        return ExperimentResultKey(
            experiment_id="fig99",
            params_fingerprint=f"params-{salt}",
            environment_digest=f"env-{salt}",
        )

    def test_key_components_partition_entries(self):
        base = self.make_result_key()
        assert base.digest != ExperimentResultKey(
            "other", base.params_fingerprint, base.environment_digest
        ).digest
        assert base.digest != ExperimentResultKey(
            base.experiment_id, "params-b", base.environment_digest
        ).digest
        assert base.digest != ExperimentResultKey(
            base.experiment_id, base.params_fingerprint, "env-b"
        ).digest
        assert base.digest != ExperimentResultKey(
            base.experiment_id,
            base.params_fingerprint,
            base.environment_digest,
            schema_version=STORE_SCHEMA_VERSION + 1,
        ).digest

    def test_payload_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = self.make_result_key()
        assert store.get_result(key) is None
        payload = {"result": {"rows": [{"x": 1.25}]}, "table": "x\n1.25"}
        store.put_result(key, payload)
        assert store.get_result(key) == payload

    def test_frame_and_result_entries_coexist(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_key(), render_small())
        store.put_result(self.make_result_key(), {"table": "t", "result": {}})
        assert store.stats().entries == 2
        assert store.get(make_key()) is not None
        assert store.get_result(self.make_result_key()) is not None

    def test_registry_digest_is_stable_and_tracks_registration(self):
        from repro.core.device import DEVICE_REGISTRY, register_device

        assert device_registry_digest() == device_registry_digest()
        before = device_registry_digest()
        register_device("store-test-tpu", lambda: TPUDevice(rows=8))
        try:
            changed = device_registry_digest()
        finally:
            del DEVICE_REGISTRY["store-test-tpu"]
        assert changed != before
        assert device_registry_digest() == before

    def test_environment_digest_tracks_model_registry(self):
        from repro.nerf.models import MODEL_REGISTRY
        from repro.perf.store import environment_digest, model_registry_digest

        assert model_registry_digest() == model_registry_digest()
        env_before = environment_digest()
        MODEL_REGISTRY["store-test-model"] = MODEL_REGISTRY["instant-ngp"]
        try:
            assert model_registry_digest() != env_before
            assert environment_digest() != env_before
        finally:
            del MODEL_REGISTRY["store-test-model"]
        assert environment_digest() == env_before


SPEC = SweepSpec(
    devices=("flexnerfer", "neurex"),
    models=("instant-ngp",),
    precisions=(None, Precision.INT8),
    pruning_ratios=(0.0, 0.5),
    base_config=SMALL,
)


class TestEngineIntegration:
    def test_warm_engine_skips_simulation_bit_exactly(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = SweepEngine(store=store)
        cold_rows = cold.run(SPEC)
        assert cold.stats.render_calls > 0
        assert cold.stats.store_hits == 0
        assert cold.stats.store_misses == cold.stats.render_calls

        warm = SweepEngine(store=store)
        warm_rows = warm.run(SPEC)
        assert warm.stats.render_calls == 0
        assert warm.stats.store_hits == cold.stats.render_calls
        for a, b in zip(cold_rows, warm_rows):
            assert a.report.latency_s == b.report.latency_s
            assert a.report.energy_j == b.report.energy_j
            assert a.report.trace.records == b.report.trace.records

    def test_no_store_engine_is_unaffected(self):
        engine = SweepEngine()
        engine.run(SPEC)
        assert engine.stats.store_hits == 0
        assert engine.stats.store_misses == 0
        assert engine.stats.render_calls == engine.stats.report_misses

    def test_attach_store_mid_life(self, tmp_path):
        engine = SweepEngine()
        engine.run(SPEC)
        engine.attach_store(ResultStore(tmp_path))
        engine.clear()
        engine.run(SPEC)  # re-simulates, now writing back
        fresh = SweepEngine(store=ResultStore(tmp_path))
        fresh.run(SPEC)
        assert fresh.stats.render_calls == 0

    def test_fleet_simulator_reads_through_store(self, tmp_path):
        from repro.serve.fleet import FleetSimulator
        from repro.serve.request import PoissonStream, Scenario, ScenarioMix

        mix = ScenarioMix(
            scenarios=(Scenario("instant-ngp", scene="lego", width=100, height=100),),
            weights=(1.0,),
        )
        stream = PoissonStream(rate_rps=20.0, duration_s=5.0, mix=mix, sla_s=0.5)
        requests = stream.generate(seed=0)

        store = ResultStore(tmp_path)
        cold_engine = SweepEngine(store=store)
        cold = FleetSimulator(("flexnerfer",), engine=cold_engine).run(requests)
        assert cold_engine.stats.render_calls > 0

        warm_engine = SweepEngine(store=store)
        warm = FleetSimulator(("flexnerfer",), engine=warm_engine).run(requests)
        assert warm_engine.stats.render_calls == 0
        assert warm.p95_latency_s == cold.p95_latency_s
        assert warm.energy_per_request_j == cold.energy_per_request_j

    def test_parallel_prefill_uses_store(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepEngine(store=store).run(SPEC)
        pool_engine = SweepEngine(max_workers=2, store=store)
        rows = pool_engine.run(SPEC)
        assert pool_engine.stats.render_calls == 0
        assert len(rows) == len(SweepEngine().run(SPEC))


class TestConcurrency:
    def test_concurrent_writers_do_not_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        report = render_small()
        keys = [make_key(str(i)) for i in range(4)]
        errors: list[Exception] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(25):
                    key = keys[(seed + i) % len(keys)]
                    store.put(key, report)
                    loaded = store.get(key)
                    # A concurrent get may race a replace but never sees a
                    # partial file: it is either a miss or a full report.
                    if loaded is not None:
                        assert loaded.latency_s == report.latency_s
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert not errors
        stats = store.stats()
        assert stats.entries == len(keys)
        for key in keys:
            assert store.get(key).latency_s == report.latency_s

    def test_concurrent_engines_share_one_store(self, tmp_path):
        store = ResultStore(tmp_path)
        barrier = threading.Barrier(4)
        results = []

        def run_one(_: int):
            engine = SweepEngine(store=store)
            barrier.wait()
            results.append(engine.run(SPEC))

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(run_one, range(4)))
        reference = results[0]
        for rows in results[1:]:
            for a, b in zip(reference, rows):
                assert a.report.latency_s == b.report.latency_s
                assert a.report.energy_j == b.report.energy_j
        # The store ends up consistent and warm for a fresh reader.
        fresh = SweepEngine(store=store)
        fresh.run(SPEC)
        assert fresh.stats.render_calls == 0


class TestDefaultLocation:
    def test_env_var_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "custom"))
        assert ResultStore.default().root == tmp_path / "custom"

    def test_checkout_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        root = ResultStore.default().root
        assert root.name == ".repro-store"
        assert (root.parent / "pyproject.toml").exists()

"""Tests for the NeRF encoding unit, RISC-V controller and DMA engine."""

import numpy as np
import pytest

from repro.core.controller import ControlProgram, DMAEngine, DMATransfer, RISCVController
from repro.core.encoding_unit import (
    HashEncodingEngine,
    NeRFEncodingUnit,
    PositionalEncodingEngine,
)
from repro.nerf.hashgrid import HashGrid, HashGridConfig
from repro.nerf.positional import approx_positional_encoding
from repro.nerf.workload import EncodingOp


class TestPositionalEncodingEngine:
    def test_functional_encoding_matches_approximation(self, rng):
        pee = PositionalEncodingEngine()
        values = rng.random((10, 3))
        np.testing.assert_array_equal(
            pee.encode(values, 6), approx_positional_encoding(values, 6)
        )

    def test_timing_scales_with_points(self):
        pee = PositionalEncodingEngine(num_lanes=64)
        small = EncodingOp("p", "positional", num_points=640, input_dim=3, output_dim=60)
        large = EncodingOp("p", "positional", num_points=6400, input_dim=3, output_dim=60)
        assert pee.timing(large).cycles == pytest.approx(10 * pee.timing(small).cycles, rel=0.01)

    def test_rejects_hash_ops(self):
        with pytest.raises(ValueError):
            PositionalEncodingEngine().timing(
                EncodingOp("h", "hash", num_points=1, input_dim=3, output_dim=4, table_lookups_per_point=8)
            )

    def test_cost_advantage_over_designware(self):
        """Section 5.2.1: 8.2x area and 12.8x power reduction."""
        pee = PositionalEncodingEngine()
        assert pee.designware_cost().area_um2 / pee.cost().area_um2 == pytest.approx(8.2, rel=0.05)
        assert pee.designware_cost().power_mw / pee.cost().power_mw == pytest.approx(12.8, rel=0.05)


class TestHashEncodingEngine:
    def test_coalescing_reduces_cycles(self):
        op = EncodingOp(
            "h", "hash", num_points=64000, input_dim=3, output_dim=32,
            table_lookups_per_point=128, table_bytes=1 << 20,
        )
        fast = HashEncodingEngine(coalescing_factor=8.0)
        slow = HashEncodingEngine(coalescing_factor=1.0)
        assert fast.timing(op).cycles < slow.timing(op).cycles

    def test_measured_coalescing_factor(self, rng):
        grid = HashGrid(HashGridConfig(num_levels=4, log2_table_size=10, base_resolution=4, max_resolution=32))
        hee = HashEncodingEngine()
        hee.encode(grid, rng.random((500, 3)))
        assert hee.measured_coalescing(grid) > 1.0

    def test_rejects_positional_ops(self):
        with pytest.raises(ValueError):
            HashEncodingEngine().timing(
                EncodingOp("p", "positional", num_points=1, input_dim=3, output_dim=6)
            )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HashEncodingEngine(num_units=0)
        with pytest.raises(ValueError):
            HashEncodingEngine(coalescing_factor=0.5)


class TestNeRFEncodingUnit:
    def test_dispatch_by_kind(self):
        unit = NeRFEncodingUnit()
        positional = EncodingOp("p", "positional", num_points=1000, input_dim=3, output_dim=60)
        hash_op = EncodingOp(
            "h", "hash", num_points=1000, input_dim=3, output_dim=32,
            table_lookups_per_point=128,
        )
        assert unit.timing(positional).time_s > 0
        assert unit.timing(hash_op).time_s > 0

    def test_cost_reporting(self):
        unit = NeRFEncodingUnit()
        assert 0.1 < unit.area_mm2() < 5.0
        assert 0.0 < unit.power_w() < 2.0


class TestControllerAndDMA:
    def test_decode_time_scales_with_program(self):
        controller = RISCVController()
        small = controller.program_for_gemm(num_tiles=10)
        large = controller.program_for_gemm(num_tiles=1000)
        assert controller.decode_time_s(large) > controller.decode_time_s(small)

    def test_program_validation(self):
        with pytest.raises(ValueError):
            ControlProgram("bad", num_instructions=-1)

    def test_controller_cost_includes_program_memory(self):
        cost = RISCVController().cost()
        assert cost.area_um2 > 68000.0

    def test_dma_transfer_time_and_energy(self):
        dma = DMAEngine()
        transfer = DMATransfer(num_bytes=12.8e9)
        assert dma.transfer_time_s(transfer) == pytest.approx(1.0, rel=0.01)
        assert dma.transfer_energy_j(transfer) > 0
        assert dma.execute(transfer) > 0
        assert len(dma.completed) == 1

    def test_dma_transfer_validation(self):
        with pytest.raises(ValueError):
            DMATransfer(num_bytes=-1)
        with pytest.raises(ValueError):
            DMATransfer(num_bytes=1, direction="sideways")

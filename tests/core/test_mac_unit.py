"""Bit-exactness and cost tests for the bit-scalable MAC unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mac_unit import (
    SHIFTERS_OPTIMIZED,
    SHIFTERS_UNOPTIMIZED,
    BitScalableMACUnit,
)
from repro.sparse.formats import Precision


class TestLanes:
    def test_lane_counts_match_fig6(self):
        assert BitScalableMACUnit.lanes(Precision.INT16) == 1
        assert BitScalableMACUnit.lanes(Precision.INT8) == 4
        assert BitScalableMACUnit.lanes(Precision.INT4) == 16


class TestFusedMultiplication:
    @pytest.mark.parametrize("precision", list(Precision))
    def test_extreme_values(self, precision):
        unit = BitScalableMACUnit()
        for a in (precision.min_value, -1, 0, 1, precision.max_value):
            for b in (precision.min_value, -1, 0, 1, precision.max_value):
                assert unit.multiply(a, b, precision) == a * b

    def test_out_of_range_rejected(self):
        unit = BitScalableMACUnit()
        with pytest.raises(ValueError):
            unit.multiply(200, 1, Precision.INT8)

    def test_vector_lane_count_enforced(self):
        unit = BitScalableMACUnit()
        with pytest.raises(ValueError):
            unit.multiply_vector(np.array([1, 2]), np.array([3, 4]), Precision.INT16)

    def test_vector_products_and_ops(self, rng):
        unit = BitScalableMACUnit()
        a = rng.integers(-8, 8, size=16)
        b = rng.integers(-8, 8, size=16)
        result = unit.multiply_vector(a, b, Precision.INT4)
        assert result.products == list(a * b)
        assert result.sub_multiplier_ops == 16

    def test_accumulation(self, rng):
        unit = BitScalableMACUnit()
        total = 0
        for _ in range(5):
            a = rng.integers(-100, 100, size=4)
            b = rng.integers(-100, 100, size=4)
            total += int(np.dot(a, b))
            unit.multiply_accumulate(a, b, Precision.INT8)
        assert unit.accumulator == total
        unit.reset()
        assert unit.accumulator == 0


@given(
    a=st.integers(-32768, 32767),
    b=st.integers(-32768, 32767),
)
@settings(max_examples=200, deadline=None)
def test_int16_fusion_is_exact(a, b):
    """Sixteen 4x4 sub-multipliers fused with shift-adds reproduce a*b exactly."""
    assert BitScalableMACUnit().multiply(a, b, Precision.INT16) == a * b


@given(a=st.integers(-128, 127), b=st.integers(-128, 127))
@settings(max_examples=150, deadline=None)
def test_int8_fusion_is_exact(a, b):
    assert BitScalableMACUnit().multiply(a, b, Precision.INT8) == a * b


@given(a=st.integers(-8, 7), b=st.integers(-8, 7))
@settings(max_examples=100, deadline=None)
def test_int4_multiplication_is_exact(a, b):
    assert BitScalableMACUnit().multiply(a, b, Precision.INT4) == a * b


class TestCostModel:
    def test_shifter_counts(self):
        assert BitScalableMACUnit(optimized_shifters=True).num_shifters == SHIFTERS_OPTIMIZED
        assert BitScalableMACUnit(optimized_shifters=False).num_shifters == SHIFTERS_UNOPTIMIZED

    def test_costs_match_paper_fig12c(self):
        """Calibration against Fig. 12(c): 4416.84 um2 / 1.86 mW vs 6161.9 / 3.42."""
        optimized = BitScalableMACUnit(optimized_shifters=True).cost()
        unoptimized = BitScalableMACUnit(optimized_shifters=False).cost()
        assert optimized.area_um2 == pytest.approx(4416.84, rel=0.05)
        assert optimized.power_mw == pytest.approx(1.86, rel=0.05)
        assert unoptimized.area_um2 == pytest.approx(6161.9, rel=0.05)
        assert unoptimized.power_mw == pytest.approx(3.42, rel=0.05)

    def test_paper_reduction_percentages(self):
        optimized = BitScalableMACUnit(optimized_shifters=True).cost()
        unoptimized = BitScalableMACUnit(optimized_shifters=False).cost()
        assert 1 - optimized.area_um2 / unoptimized.area_um2 == pytest.approx(0.283, abs=0.03)
        assert 1 - optimized.power_mw / unoptimized.power_mw == pytest.approx(0.456, abs=0.03)

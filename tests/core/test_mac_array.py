"""Tests for the MAC array: functional GEMM and Table 3 calibration."""

import numpy as np
import pytest

from repro.core.mac_array import MACArray
from repro.sparse.formats import Precision
from repro.sparse.tensor import random_sparse_matrix


@pytest.fixture(scope="module")
def array():
    return MACArray()


class TestStructure:
    def test_multiplier_counts_match_table3(self, array):
        assert array.num_multipliers(Precision.INT16) == 64**2
        assert array.num_multipliers(Precision.INT8) == 128**2
        assert array.num_multipliers(Precision.INT4) == 256**2

    def test_peak_tops(self, array):
        assert array.peak_tops(Precision.INT16) == pytest.approx(6.55, rel=0.01)
        assert array.peak_tops(Precision.INT4) == pytest.approx(104.9, rel=0.01)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MACArray(rows=0)


class TestFunctionalGEMM:
    def test_small_integer_gemm(self, rng):
        array = MACArray(rows=8, cols=8)
        a = random_sparse_matrix((5, 6), 0.5, Precision.INT8, rng)
        b = random_sparse_matrix((6, 4), 0.4, Precision.INT8, rng)
        np.testing.assert_array_equal(array.gemm(a, b, Precision.INT8), a @ b)

    def test_gemm_handles_all_zero_operand(self):
        array = MACArray(rows=4, cols=4)
        result = array.gemm(np.zeros((3, 3)), np.ones((3, 3)), Precision.INT16)
        np.testing.assert_array_equal(result, np.zeros((3, 3)))


class TestTable3Calibration:
    """The composed cost model reproduces the paper's Table 3 values."""

    def test_area(self, array):
        assert array.area().total_mm2 == pytest.approx(28.6, rel=0.03)

    @pytest.mark.parametrize(
        "precision, expected_power",
        [(Precision.INT16, 5.5), (Precision.INT8, 6.4), (Precision.INT4, 6.9)],
    )
    def test_power(self, array, precision, expected_power):
        assert array.power(precision).total_w == pytest.approx(expected_power, rel=0.05)

    @pytest.mark.parametrize(
        "precision, expected_peak",
        [(Precision.INT16, 1.2), (Precision.INT8, 4.1), (Precision.INT4, 15.2)],
    )
    def test_peak_efficiency(self, array, precision, expected_peak):
        assert array.peak_efficiency_tops_per_w(precision) == pytest.approx(
            expected_peak, rel=0.07
        )

    @pytest.mark.parametrize(
        "precision, expected_effective",
        [(Precision.INT16, 1.2), (Precision.INT8, 3.4), (Precision.INT4, 11.8)],
    )
    def test_effective_efficiency(self, array, precision, expected_effective):
        assert array.effective_efficiency_tops_per_w(precision) == pytest.approx(
            expected_effective, rel=0.1
        )

    def test_breakdown_blocks_present(self, array):
        breakdown = array.area().breakdown
        assert {"mac_units", "distribution_network", "reduction_tree", "format_codec"} <= set(
            breakdown
        )
        assert breakdown["mac_units"] > breakdown["distribution_network"]

    def test_array_config_flags(self, array):
        config = array.array_config()
        assert config.bit_scalable
        assert config.supports_sparsity

"""Tests for the distribution network's dense sparse-GEMM mapping (Fig. 5/11)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import DistributionNetwork
from repro.noc.dataflow import DataflowMode
from repro.sparse.formats import Precision
from repro.sparse.tensor import random_sparse_matrix


class TestDenseMapping:
    def test_fig5_example_counts(self):
        """A 4x4 array maps an irregular sparse GEMM densely (paper Fig. 5)."""
        dn = DistributionNetwork(4, 4)
        # Matrix 1 has one dominant row element reused across matrix 2's row.
        matrix_a = np.array(
            [
                [2, 0, 0],
                [0, 3, 0],
                [0, 0, 4],
                [0, 0, 5],
            ]
        )
        matrix_b = np.array(
            [
                [1, 2, 3, 4],
                [5, 0, 6, 0],
                [0, 7, 0, 0],
            ]
        )
        plan = dn.map_sparse_gemm(matrix_a, matrix_b)
        # products: row0 -> 4, row1 -> 2, rows 2/3 -> 1 each = 8 non-zero products
        assert plan.num_products == 8
        assert plan.num_passes == 1
        assert plan.utilization == pytest.approx(0.5)

    def test_mapped_products_reproduce_the_gemm(self, rng):
        dn = DistributionNetwork(8, 8)
        matrix_a = random_sparse_matrix((6, 9), 0.6, Precision.INT8, rng)
        matrix_b = random_sparse_matrix((9, 7), 0.5, Precision.INT8, rng)
        plan = dn.map_sparse_gemm(matrix_a, matrix_b)
        np.testing.assert_array_equal(
            plan.compute_outputs((6, 7)), matrix_a @ matrix_b
        )

    def test_row_dataflow_classification(self):
        dn = DistributionNetwork(4, 4)
        matrix_a = np.array([[1, 0], [0, 0]])
        matrix_b = np.array([[1, 2, 3, 4], [0, 0, 0, 0]])
        plan = dn.map_sparse_gemm(matrix_a, matrix_b)
        # One a-element broadcast to the whole first row of MACs.
        assert plan.row_dataflows()[0] is DataflowMode.BROADCAST

    def test_multiple_passes_when_products_exceed_array(self, rng):
        dn = DistributionNetwork(2, 2)
        matrix_a = np.ones((4, 4))
        matrix_b = np.ones((4, 4))
        plan = dn.map_sparse_gemm(matrix_a, matrix_b)
        assert plan.num_products == 64
        assert plan.num_passes == 16

    def test_empty_matrices_produce_no_work(self):
        dn = DistributionNetwork(4, 4)
        plan = dn.map_sparse_gemm(np.zeros((4, 4)), np.zeros((4, 4)))
        assert plan.num_products == 0
        assert plan.num_passes == 0

    def test_dimension_mismatch_rejected(self):
        dn = DistributionNetwork(4, 4)
        with pytest.raises(ValueError):
            dn.map_sparse_gemm(np.ones((2, 3)), np.ones((4, 2)))


class TestRoutingCost:
    def test_distribute_counts_reads_and_hops(self, rng):
        dn = DistributionNetwork(4, 4)
        matrix_a = random_sparse_matrix((4, 4), 0.5, Precision.INT8, rng)
        matrix_b = random_sparse_matrix((4, 4), 0.5, Precision.INT8, rng)
        plan = dn.map_sparse_gemm(matrix_a, matrix_b)
        costs = dn.distribute(plan)
        assert costs["buffer_reads"] > 0
        assert costs["switch_traversals"] >= 0
        assert costs["mesh_traversals"] > 0

    def test_num_switches(self):
        dn = DistributionNetwork(4, 4)
        # column NoC (3 switches for 4 leaves) + 4 row NoCs x 3 switches
        assert dn.num_switches() == 3 + 4 * 3


class TestCLBBandwidth:
    def test_full_utilisation_with_clb(self):
        for precision in Precision:
            assert DistributionNetwork.clb_bandwidth_utilization(precision, True) == 1.0

    def test_paper_utilisation_without_clb(self):
        assert DistributionNetwork.clb_bandwidth_utilization(Precision.INT16, False) == pytest.approx(0.25)
        assert DistributionNetwork.clb_bandwidth_utilization(Precision.INT8, False) == pytest.approx(0.5)
        assert DistributionNetwork.clb_bandwidth_utilization(Precision.INT4, False) == pytest.approx(1.0)


@given(
    shape_k=st.integers(1, 10),
    shape_m=st.integers(1, 8),
    shape_n=st.integers(1, 8),
    sparsity_a=st.floats(0.0, 0.95),
    sparsity_b=st.floats(0.0, 0.95),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_dense_mapping_always_reproduces_matmul(
    shape_k, shape_m, shape_n, sparsity_a, sparsity_b, seed
):
    """Property: the packed products always accumulate to A @ B exactly."""
    rng = np.random.default_rng(seed)
    matrix_a = random_sparse_matrix((shape_m, shape_k), sparsity_a, Precision.INT4, rng)
    matrix_b = random_sparse_matrix((shape_k, shape_n), sparsity_b, Precision.INT4, rng)
    plan = DistributionNetwork(4, 4).map_sparse_gemm(matrix_a, matrix_b)
    np.testing.assert_array_equal(
        plan.compute_outputs((shape_m, shape_n)), matrix_a @ matrix_b
    )
    assert plan.num_products == int(
        sum(
            np.count_nonzero(matrix_a[i, k] != 0) * np.count_nonzero(matrix_b[k])
            for i in range(shape_m)
            for k in range(shape_k)
            if matrix_a[i, k] != 0
        )
    )

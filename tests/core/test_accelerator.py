"""Tests for the FlexNeRFer top-level accelerator model."""

import pytest

from repro.core import FlexNeRFer, FlexNeRFerConfig
from repro.nerf.models import FrameConfig, get_model
from repro.nerf.workload import OpCategory
from repro.sparse.formats import Precision


@pytest.fixture(scope="module")
def accelerator():
    return FlexNeRFer()


@pytest.fixture(scope="module")
def instant_ngp_workload():
    return get_model("instant-ngp").build_workload(FrameConfig())


class TestConfig:
    def test_defaults(self):
        config = FlexNeRFerConfig()
        assert config.num_mac_units == 4096
        assert config.default_precision is Precision.INT16

    def test_validation(self):
        with pytest.raises(ValueError):
            FlexNeRFerConfig(array_rows=0)
        with pytest.raises(ValueError):
            FlexNeRFerConfig(input_buffer_bytes=0)


class TestHardwareCost:
    def test_area_matches_paper(self, accelerator):
        """Fig. 16(a): FlexNeRFer occupies ~35.4 mm^2."""
        assert accelerator.area().total_mm2 == pytest.approx(35.4, rel=0.03)

    @pytest.mark.parametrize(
        "precision, expected",
        [(Precision.INT16, 7.3), (Precision.INT8, 8.4), (Precision.INT4, 9.2)],
    )
    def test_power_matches_paper(self, accelerator, precision, expected):
        """Fig. 16(b): 7.3 / 8.4 / 9.2 W at INT16 / INT8 / INT4."""
        assert accelerator.power(precision).total_w == pytest.approx(expected, rel=0.05)

    def test_meets_on_device_constraints(self, accelerator):
        assert accelerator.area().total_mm2 < 100.0
        assert accelerator.power(Precision.INT4).total_w < 10.0

    def test_area_breakdown_contains_main_blocks(self, accelerator):
        blocks = set(accelerator.area().breakdown)
        assert {"encoding_unit", "buffers", "controller", "dma"} <= blocks
        assert any(block.startswith("gemm_unit/") for block in blocks)

    def test_format_codec_overhead_is_small(self, accelerator):
        """The format encoder/decoder costs a few percent (paper: 3.2 % / 3.4 %)."""
        area = accelerator.area()
        assert 0.01 < area.fraction("gemm_unit/format_codec") < 0.08


class TestFrameExecution:
    def test_report_fields(self, accelerator, instant_ngp_workload):
        report = accelerator.render_frame(instant_ngp_workload)
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert report.fps == pytest.approx(1.0 / report.latency_s)
        assert report.precision is Precision.INT16
        assert len(report.trace.records) == len(instant_ngp_workload.ops)

    def test_lower_precision_is_faster(self, accelerator, instant_ngp_workload):
        int16 = accelerator.render_frame(instant_ngp_workload, Precision.INT16)
        int8 = accelerator.render_frame(instant_ngp_workload, Precision.INT8)
        int4 = accelerator.render_frame(instant_ngp_workload, Precision.INT4)
        assert int4.latency_s < int8.latency_s < int16.latency_s

    def test_pruning_speeds_up_rendering(self, accelerator, instant_ngp_workload):
        baseline = accelerator.render_frame(instant_ngp_workload)
        pruned = accelerator.render_frame(instant_ngp_workload, pruning_ratio=0.9)
        assert pruned.latency_s < baseline.latency_s

    def test_format_conversion_share_matches_fig18(self, accelerator, instant_ngp_workload):
        """Format conversion is a single-digit percentage of frame time at INT16."""
        report = accelerator.render_frame(instant_ngp_workload, Precision.INT16)
        components = report.trace.time_by_component()
        share = components["format_conversion"] / report.latency_s
        assert 0.01 < share < 0.12

    def test_all_categories_present_in_trace(self, accelerator, instant_ngp_workload):
        report = accelerator.render_frame(instant_ngp_workload)
        breakdown = report.trace.runtime_breakdown()
        assert breakdown[OpCategory.GEMM] > 0
        assert breakdown[OpCategory.ENCODING] > 0

    def test_big_mlp_model_is_gemm_dominated(self, accelerator):
        workload = get_model("nerf").build_workload(FrameConfig())
        report = accelerator.render_frame(workload)
        assert report.trace.runtime_breakdown()[OpCategory.GEMM] > 0.6

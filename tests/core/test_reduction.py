"""Tests for the MAC-unit and array-level reduction trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import FlexibleReductionTree, MACUnitReductionTree
from repro.sparse.formats import Precision


class TestMACUnitReductionTree:
    def test_shifter_counts_match_paper(self):
        assert MACUnitReductionTree(optimized=True).num_shifters == 16
        assert MACUnitReductionTree(optimized=False).num_shifters == 24
        # Paper: 6,144 shifters for an unoptimised 16x16 array.
        assert MACUnitReductionTree(optimized=False).shifters_for_array(16, 16) == 6144

    def test_int4_mode_passes_products_through(self):
        products = list(range(16))
        assert MACUnitReductionTree.reduce(products, Precision.INT4) == products

    def test_int8_mode_groups_of_four(self):
        # lane products arranged so each lane computes (1 + 2*16 + 3*16 + 4*256)
        products = [1, 2, 3, 4] * 4
        results = MACUnitReductionTree.reduce(products, Precision.INT8)
        assert len(results) == 4
        assert all(r == 1 + (2 + 3) * 16 + 4 * 256 for r in results)

    def test_int16_mode_single_result(self):
        products = [1] * 16
        results = MACUnitReductionTree.reduce(products, Precision.INT16)
        assert len(results) == 1
        expected = sum(1 << (4 * (i + j)) for i in range(4) for j in range(4))
        assert results[0] == expected

    def test_wrong_product_count_rejected(self):
        with pytest.raises(ValueError):
            MACUnitReductionTree.reduce([1, 2, 3], Precision.INT4)


class TestFlexibleReductionTree:
    def test_groups_by_output_index(self):
        tree = FlexibleReductionTree(num_leaves=8)
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        output_ids = ["a", "a", "a", "b", "b", "c", "c", "c"]
        result = tree.reduce(values, output_ids)
        assert result.outputs == {"a": 6.0, "b": 9.0, "c": 21.0}

    def test_all_same_output_is_full_sum(self):
        tree = FlexibleReductionTree(num_leaves=4)
        result = tree.reduce([1.0, 2.0, 3.0, 4.0], ["o"] * 4)
        assert result.outputs == {"o": 10.0}
        assert result.bypass_operations == 0

    def test_all_distinct_outputs_only_bypass(self):
        tree = FlexibleReductionTree(num_leaves=4)
        result = tree.reduce([1.0, 2.0, 3.0, 4.0], list("abcd"))
        assert result.add_operations == 0
        assert len(result.outputs) == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            FlexibleReductionTree(4).reduce([1.0], ["a", "b"])

    def test_too_many_leaves_rejected(self):
        with pytest.raises(ValueError):
            FlexibleReductionTree(2).reduce([1.0, 2.0, 3.0], list("abc"))

    def test_cost_scales_with_leaves(self):
        small = FlexibleReductionTree(64).cost()
        large = FlexibleReductionTree(4096).cost()
        assert large.area_um2 > small.area_um2


@given(
    data=st.lists(
        st.tuples(st.floats(-100, 100), st.integers(0, 5)), min_size=1, max_size=64
    )
)
@settings(max_examples=80, deadline=None)
def test_flexible_reduction_matches_grouped_sum(data):
    """The ART produces exactly the per-output sums, for any grouping."""
    values = [v for v, _ in data]
    output_ids = [f"out{i}" for _, i in data]
    tree = FlexibleReductionTree(num_leaves=64)
    result = tree.reduce(values, output_ids)
    expected = {}
    for value, oid in zip(values, output_ids):
        expected[oid] = expected.get(oid, 0.0) + value
    assert set(result.outputs) == set(expected)
    for key, total in expected.items():
        assert result.outputs[key] == pytest.approx(total)

"""Tests for the unified Device protocol and DEVICE_REGISTRY."""

import pytest

from repro.core.accelerator import FrameReport
from repro.core.device import (
    DEVICE_REGISTRY,
    Device,
    UnsupportedKnobError,
    available_devices,
    get_device,
    register_device,
)
from repro.nerf.models import FrameConfig, get_model
from repro.sparse.formats import Precision


@pytest.fixture(scope="module")
def small_workload():
    config = FrameConfig(image_width=64, image_height=64, batch_size=1024)
    return get_model("instant-ngp").build_workload(config)


EXPECTED_DEVICES = {
    "flexnerfer",
    "neurex",
    "rtx-2080-ti",
    "rtx-4090",
    "jetson-nano",
    "xavier-nx",
    "nvdla",
    "tpu",
}


class TestRegistryCompleteness:
    def test_covers_every_device_family(self):
        assert EXPECTED_DEVICES <= set(DEVICE_REGISTRY)
        assert set(available_devices()) == set(DEVICE_REGISTRY)

    @pytest.mark.parametrize("name", sorted(EXPECTED_DEVICES))
    def test_constructible_and_conforming(self, name):
        device = get_device(name)
        assert isinstance(device, Device)
        assert isinstance(device.name, str) and device.name
        for flag in ("supports_precision", "supports_pruning", "supports_batching"):
            assert isinstance(getattr(device, flag), bool)

    @pytest.mark.parametrize("name", sorted(EXPECTED_DEVICES))
    def test_render_frame_returns_report(self, name, small_workload):
        report = get_device(name).render_frame(small_workload)
        assert isinstance(report, FrameReport)
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert report.model_name == "instant-ngp"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("gameboy")

    def test_register_device_roundtrip(self):
        class Custom(Device):
            name = "custom"

            def render_frame(self, workload, *, precision=None, pruning_ratio=0.0):
                raise NotImplementedError

        register_device("custom-test-device", Custom)
        try:
            assert isinstance(get_device("custom-test-device"), Custom)
            with pytest.raises(ValueError):
                register_device("custom-test-device", Custom)
        finally:
            del DEVICE_REGISTRY["custom-test-device"]


class TestCapabilityFlags:
    def test_flexnerfer_supports_everything(self):
        flex = get_device("flexnerfer")
        assert flex.supports_precision and flex.supports_pruning
        assert flex.effective_precision(Precision.INT4) is Precision.INT4
        assert flex.effective_precision(None) is Precision.INT16  # config default
        assert flex.effective_pruning(0.7) == 0.7

    def test_neurex_noops_unsupported_knobs(self, small_workload):
        neurex = get_device("neurex")
        assert not neurex.supports_precision and not neurex.supports_pruning
        assert neurex.effective_precision(Precision.INT4) is Precision.INT16
        assert neurex.effective_pruning(0.9) == 0.0
        plain = neurex.render_frame(small_workload)
        knobbed = neurex.render_frame(
            small_workload, precision=Precision.INT4, pruning_ratio=0.9
        )
        assert knobbed.latency_s == plain.latency_s
        assert knobbed.energy_j == plain.energy_j

    def test_gpu_raises_on_unsupported_knobs(self, small_workload):
        gpu = get_device("rtx-2080-ti")
        with pytest.raises(UnsupportedKnobError):
            gpu.render_frame(small_workload, precision=Precision.INT8)
        with pytest.raises(UnsupportedKnobError):
            gpu.render_frame(small_workload, pruning_ratio=0.5)

    def test_utilization_devices_raise_on_pruning(self, small_workload):
        for name in ("nvdla", "tpu"):
            with pytest.raises(UnsupportedKnobError):
                get_device(name).render_frame(small_workload, pruning_ratio=0.5)


class TestDeviceCost:
    def test_accelerators_fit_on_device_budget(self):
        for name in ("flexnerfer", "neurex"):
            device = get_device(name)
            assert device.area_mm2() < 100.0
            assert max(device.power_profile().values()) < 10.0

    def test_gpu_cost_matches_spec_sheet(self):
        gpu = get_device("rtx-2080-ti")
        assert gpu.area_mm2() == pytest.approx(754.0)
        assert gpu.power_profile() == {"typical": pytest.approx(250.0)}

    def test_flexnerfer_power_grows_at_lower_precision(self):
        profile = get_device("flexnerfer").power_profile()
        assert profile["INT4"] > profile["INT8"] > profile["INT16"]

"""Tests for the online sparsity-aware compressor (paper Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import SparsityAwareCompressor, SparsityRatioCalculator
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.tensor import random_sparse_matrix, sparsity_ratio


class TestSparsityRatioCalculator:
    def test_elements_per_fetch_quadruples_per_precision_step(self):
        assert SparsityRatioCalculator(Precision.INT16).elements_per_fetch == 64 * 64
        assert SparsityRatioCalculator(Precision.INT8).elements_per_fetch == 128 * 128
        assert SparsityRatioCalculator(Precision.INT4).elements_per_fetch == 256 * 256

    def test_eq4_matches_true_sparsity(self, rng):
        calculator = SparsityRatioCalculator()
        tile = random_sparse_matrix((64, 64), 0.7, rng=rng)
        calculator.observe_fetch(tile)
        assert calculator.sparsity_ratio == pytest.approx(sparsity_ratio(tile))
        assert calculator.sparsity_percent == pytest.approx(100 * sparsity_ratio(tile))

    def test_accumulates_across_fetches(self, rng):
        calculator = SparsityRatioCalculator()
        calculator.observe_fetch(np.zeros((8, 8)))
        calculator.observe_fetch(np.ones((8, 8)))
        assert calculator.num_fetches == 2
        assert calculator.sparsity_ratio == pytest.approx(0.5)

    def test_reset(self, rng):
        calculator = SparsityRatioCalculator()
        calculator.observe_fetch(np.ones((4, 4)))
        calculator.reset()
        assert calculator.sparsity_ratio == 0.0
        assert calculator.num_fetches == 0


class TestCompressor:
    def test_input_compression_roundtrip(self, rng):
        compressor = SparsityAwareCompressor(Precision.INT16)
        tile = random_sparse_matrix((64, 64), 0.85, Precision.INT16, rng)
        record = compressor.compress_input(tile)
        np.testing.assert_array_equal(compressor.decompress(record.encoded), tile)

    def test_sparse_input_is_actually_compressed(self, rng):
        compressor = SparsityAwareCompressor(Precision.INT16)
        record = compressor.compress_input(
            random_sparse_matrix((64, 64), 0.9, Precision.INT16, rng)
        )
        assert record.encoded.fmt is not SparsityFormat.NONE
        assert record.compression_ratio > 1.5

    def test_dense_input_stays_uncompressed(self, rng):
        compressor = SparsityAwareCompressor(Precision.INT16)
        record = compressor.compress_input(
            random_sparse_matrix((64, 64), 0.0, Precision.INT16, rng)
        )
        assert record.encoded.fmt is SparsityFormat.NONE
        assert record.compression_ratio == pytest.approx(1.0)

    def test_weight_preanalysis_and_reuse(self, rng):
        compressor = SparsityAwareCompressor(Precision.INT8)
        weights = random_sparse_matrix((128, 128), 0.8, Precision.INT8, rng)
        decision = compressor.analyze_weights("layer0", weights)
        assert compressor.weight_format("layer0") is decision.fmt
        record = compressor.compress_weights("layer0", weights)
        np.testing.assert_array_equal(compressor.decompress(record.encoded), weights)

    def test_unanalysed_weights_rejected(self):
        with pytest.raises(KeyError):
            SparsityAwareCompressor().weight_format("never-seen")


@given(
    sparsity=st.floats(0.0, 1.0),
    precision=st.sampled_from(list(Precision)),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_compression_never_loses_data_and_never_exceeds_candidates(
    sparsity, precision, seed
):
    """Property: compression is loss-less and picks a footprint-minimal format."""
    rng = np.random.default_rng(seed)
    tile = random_sparse_matrix((32, 32), sparsity, precision, rng)
    compressor = SparsityAwareCompressor(precision)
    record = compressor.compress_input(tile)
    np.testing.assert_array_equal(compressor.decompress(record.encoded), tile)
    assert record.compressed_bits <= max(record.decision.bits_per_format.values())

"""Shared fixtures for the capacity-planner suites."""

import pytest


@pytest.fixture(autouse=True)
def _detach_default_store():
    """Plan CLI runs attach stores to the shared engine; detach after each
    test so other modules keep the pure in-memory path."""
    yield
    from repro.sim.sweep import get_default_engine

    get_default_engine().attach_store(None)

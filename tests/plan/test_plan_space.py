"""Plan-space model: validation, deterministic enumeration, content keys."""

import json

import pytest

from repro.perf.distributed import shard_index
from repro.plan.space import (
    CONTROL_NAMES,
    PLAN_SPECS,
    SCHEDULER_NAMES,
    TINY_MIX,
    TRAFFIC_SHAPES,
    PlanPoint,
    PlanSpace,
    TrafficSpec,
    load_space,
    plan_point_key,
    space_digest,
    space_from_dict,
)

TINY_TRAFFIC = TrafficSpec(mix=TINY_MIX, rate_rps=20.0, duration_s=1.0, sla_ms=100.0)


class TestValidation:
    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device 'warpdrive'"):
            PlanSpace(
                name="bad",
                devices=("warpdrive",),
                worker_counts=(1,),
                traffic=TINY_TRAFFIC,
            )

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError, match="duplicate devices"):
            PlanSpace(
                name="bad",
                devices=("flexnerfer", "flexnerfer"),
                worker_counts=(1,),
                traffic=TINY_TRAFFIC,
            )

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"devices": ()}, "at least one device"),
            ({"worker_counts": ()}, "at least one worker count"),
            ({"worker_counts": (0,)}, "worker counts must be >= 1"),
            ({"schedulers": ()}, "at least one scheduler"),
            ({"schedulers": ("lifo",)}, "unknown scheduler 'lifo'"),
            ({"controls": ()}, "at least one control variant"),
            ({"controls": ("chaos",)}, "unknown control variant 'chaos'"),
        ],
    )
    def test_axis_validation(self, kwargs, message):
        base = dict(
            name="bad",
            devices=("flexnerfer",),
            worker_counts=(1,),
            traffic=TINY_TRAFFIC,
        )
        base.update(kwargs)
        with pytest.raises(ValueError, match=message):
            PlanSpace(**base)

    def test_traffic_validation(self):
        with pytest.raises(ValueError, match="must be positive"):
            TrafficSpec(mix=TINY_MIX, rate_rps=0.0, duration_s=1.0, sla_ms=100.0)
        with pytest.raises(ValueError, match="sla_ms must be positive"):
            TrafficSpec(mix=TINY_MIX, rate_rps=1.0, duration_s=1.0, sla_ms=0.0)


class TestEnumeration:
    def test_tiny_space_enumerates_pinned_candidates(self):
        points = PLAN_SPECS["tiny"].enumerate_points()
        assert [(p.fleet, p.scheduler, p.control) for p in points] == [
            (("flexnerfer",), "fifo", "none"),
            (("neurex",), "fifo", "none"),
            (("flexnerfer", "flexnerfer"), "fifo", "none"),
            (("flexnerfer", "neurex"), "fifo", "none"),
            (("neurex", "neurex"), "fifo", "none"),
        ]

    def test_enumeration_is_repeatable(self):
        space = PLAN_SPECS["reference"]
        assert space.enumerate_points() == space.enumerate_points()

    def test_full_cross_product_size(self):
        space = PlanSpace(
            name="cross",
            devices=("flexnerfer", "neurex"),
            worker_counts=(1, 2),
            traffic=TINY_TRAFFIC,
            schedulers=SCHEDULER_NAMES,
            controls=CONTROL_NAMES,
        )
        # (2 singles + 3 pairs) fleets x 3 schedulers x 3 controls.
        assert len(space.enumerate_points()) == 5 * 3 * 3


class TestContentKeys:
    def test_point_digests_are_distinct_and_stable(self):
        points = PLAN_SPECS["tiny"].enumerate_points()
        digests = [p.digest for p in points]
        assert len(set(digests)) == len(digests)
        assert digests == [p.digest for p in PLAN_SPECS["tiny"].enumerate_points()]

    def test_space_digest_ignores_name_but_not_axes(self):
        space = PLAN_SPECS["tiny"]
        renamed = PlanSpace(
            name="renamed",
            devices=space.devices,
            worker_counts=space.worker_counts,
            traffic=space.traffic,
            schedulers=space.schedulers,
            controls=space.controls,
        )
        assert space_digest(renamed) == space_digest(space)
        narrowed = PlanSpace(
            name=space.name,
            devices=space.devices,
            worker_counts=(1,),
            traffic=space.traffic,
        )
        assert space_digest(narrowed) != space_digest(space)

    def test_plan_point_keys_shard_deterministically(self):
        space = PLAN_SPECS["tiny"]
        points = space.enumerate_points()
        keys = [plan_point_key(space, p) for p in points]
        assignment = [shard_index(key, 2) for key in keys]
        assert assignment == [shard_index(k, 2) for k in keys]
        assert all(index in (0, 1) for index in assignment)


class TestSpecLoading:
    def test_builtin_names_resolve(self):
        assert load_space("tiny") is PLAN_SPECS["tiny"]
        assert load_space("reference") is PLAN_SPECS["reference"]

    def test_json_file_round_trip(self, tmp_path):
        spec = {
            "devices": ["flexnerfer", "neurex"],
            "worker_counts": [1, 2],
            "schedulers": ["fifo", "sparsity-aware"],
            "controls": ["none", "queue-cap"],
            "traffic": {
                "rate_rps": 25.0,
                "duration_s": 1.0,
                "sla_ms": 80.0,
                "seed": 3,
                "mix": "tiny",
            },
        }
        path = tmp_path / "custom.json"
        path.write_text(json.dumps(spec))
        space = load_space(str(path))
        assert space.name == "custom"
        assert space.devices == ("flexnerfer", "neurex")
        assert space.schedulers == ("fifo", "sparsity-aware")
        assert space.traffic.seed == 3
        assert space.traffic.mix is TINY_MIX

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown plan spec 'nope'"):
            load_space("nope")

    @pytest.mark.parametrize(
        "data, message",
        [
            ([], "must be a JSON object"),
            ({"traffic": []}, "needs a 'traffic' object"),
            ({"bogus": 1, "traffic": {}}, "unknown plan spec keys"),
            (
                {"traffic": {"rate_rps": 1, "duration_s": 1, "sla_ms": 1, "x": 2}},
                "unknown traffic keys",
            ),
            (
                {
                    "traffic": {
                        "rate_rps": 1,
                        "duration_s": 1,
                        "sla_ms": 1,
                        "mix": "nope",
                    }
                },
                "unknown traffic mix 'nope'",
            ),
            ({"traffic": {"duration_s": 1, "sla_ms": 1}}, "missing 'rate_rps'"),
        ],
    )
    def test_malformed_specs_rejected(self, data, message):
        with pytest.raises(ValueError, match=message):
            space_from_dict(data)


class TestTraffic:
    def test_requests_are_deterministic_and_stamped(self):
        traffic = PLAN_SPECS["tiny"].traffic
        first = traffic.requests()
        second = traffic.requests()
        assert first == second
        assert first, "traffic spec generated no requests"
        assert all(
            r.deadline_s == pytest.approx(r.arrival_s + traffic.sla_s)
            for r in first
        )

    def test_label_and_digest_of_points(self):
        point = PlanPoint(
            fleet=("flexnerfer", "neurex"), scheduler="fifo", control="none"
        )
        assert point.label == "flexnerfer+neurex"
        assert len(point.digest) == 40


class TestTrafficShapes:
    def multi_shape_space(self, shapes=TRAFFIC_SHAPES):
        return PlanSpace(
            name="shaped",
            devices=("flexnerfer",),
            worker_counts=(1,),
            traffic=TINY_TRAFFIC,
            traffic_shapes=shapes,
        )

    def test_shapes_are_an_innermost_enumeration_axis(self):
        points = self.multi_shape_space().enumerate_points()
        assert [p.traffic for p in points] == list(TRAFFIC_SHAPES)
        assert len({p.digest for p in points}) == len(points)

    def test_default_space_stays_poisson_only(self):
        assert PLAN_SPECS["tiny"].traffic_shapes == ("poisson",)
        assert all(
            p.traffic == "poisson" for p in PLAN_SPECS["tiny"].enumerate_points()
        )

    def test_shape_axis_is_part_of_the_space_digest(self):
        poisson_only = self.multi_shape_space(shapes=("poisson",))
        assert space_digest(self.multi_shape_space()) != space_digest(poisson_only)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="at least one traffic shape"):
            self.multi_shape_space(shapes=())
        with pytest.raises(ValueError, match="unknown traffic shape 'square'"):
            self.multi_shape_space(shapes=("square",))
        with pytest.raises(ValueError, match="duplicate traffic shapes"):
            self.multi_shape_space(shapes=("poisson", "poisson"))

    def test_each_shape_realizes_a_distinct_deterministic_stream(self):
        realizations = {}
        for shape in TRAFFIC_SHAPES:
            requests = TINY_TRAFFIC.requests(shape)
            assert requests, shape
            assert requests == TINY_TRAFFIC.requests(shape), shape
            assert all(
                r.deadline_s == pytest.approx(r.arrival_s + TINY_TRAFFIC.sla_s)
                for r in requests
            ), shape
            realizations[shape] = requests
        assert len({tuple(r) for r in realizations.values()}) == len(TRAFFIC_SHAPES)

    def test_unknown_shape_rejected_at_realization(self):
        with pytest.raises(ValueError, match="unknown traffic shape 'square'"):
            TINY_TRAFFIC.requests("square")

    def test_spec_file_round_trips_shapes(self, tmp_path):
        spec = {
            "devices": ["flexnerfer"],
            "worker_counts": [1],
            "traffic_shapes": ["poisson", "flash-crowd"],
            "traffic": {"rate_rps": 20.0, "duration_s": 1.0, "sla_ms": 100.0},
        }
        path = tmp_path / "shaped.json"
        path.write_text(json.dumps(spec))
        space = load_space(str(path))
        assert space.traffic_shapes == ("poisson", "flash-crowd")
        assert space.canonical()["traffic_shapes"] == ["poisson", "flash-crowd"]
        assert len(space.enumerate_points()) == 2

"""Property suite certifying the planner against brute-force re-derivation.

Fixed-seed randomized plan spaces assert the tentpole's promises:

* **Pareto soundness** -- no frontier point is dominated by *any* evaluated
  point, and every non-dominated point is on the frontier (checked against
  an independent inline dominance implementation, not the library's);
* **constraint-solver optimality** -- ``cheapest_feasible`` equals an
  exhaustive scan with the same deterministic tie-break;
* **shard-union == serial** -- the shard partitions of a space's plan
  points are disjoint, complete and order-preserving for every shard count;
* **bit-determinism** -- re-evaluating a space (serially, with ``jobs=2``,
  or through a warm store) reproduces identical evaluated points.

The iteration budget scales with ``REPRO_FUZZ_ITERATIONS`` (default 200
combined configurations, like ``tests/serve/test_properties.py``); each
random space is small, so the whole suite costs a few hundred fleet
simulations against one shared engine.
"""

import os
import random

import pytest

from repro.perf.distributed import Shard
from repro.perf.store import ResultStore
from repro.plan.evaluate import evaluate_space
from repro.plan.pareto import cheapest_feasible, dominates, pareto_frontier
from repro.plan.space import (
    CONTROL_NAMES,
    SCHEDULER_NAMES,
    TINY_MIX,
    TRAFFIC_SHAPES,
    PlanSpace,
    TrafficSpec,
    plan_point_key,
)
from repro.sim.sweep import SweepEngine

from tests._differential import assert_shard_union_matches_serial

#: Fixed fuzz seed: the whole suite is one reproducible random stream.
SEED = 20260808

#: Combined config budget; override with REPRO_FUZZ_ITERATIONS=<n>.
ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "200"))

#: Random spaces per property (evaluation is the expensive step, so the
#: budget divides down; never below 3 spaces).
N_SPACES = max(3, ITERATIONS // 40)

DEVICES = ("flexnerfer", "neurex", "rtx-4090")


@pytest.fixture(scope="module")
def engine():
    """One shared engine: every unique (device, scenario) simulates once."""
    return SweepEngine()


def random_space(rng: random.Random, name: str = "fuzz") -> PlanSpace:
    """One random small plan space drawn from the fixed-seed stream."""
    devices = tuple(rng.sample(DEVICES, rng.randint(1, len(DEVICES))))
    worker_counts = tuple(sorted(rng.sample((1, 2, 3), rng.randint(1, 2))))
    schedulers = tuple(rng.sample(SCHEDULER_NAMES, rng.randint(1, 2)))
    controls = tuple(rng.sample(CONTROL_NAMES, rng.randint(1, 2)))
    traffic_shapes = tuple(rng.sample(TRAFFIC_SHAPES, rng.randint(1, 2)))
    traffic = TrafficSpec(
        mix=TINY_MIX,
        rate_rps=rng.choice((20.0, 40.0, 80.0)),
        duration_s=rng.choice((0.5, 1.0)),
        sla_ms=rng.choice((30.0, 60.0, 120.0)),
        seed=rng.randint(0, 3),
    )
    return PlanSpace(
        name=name,
        devices=devices,
        worker_counts=worker_counts,
        traffic=traffic,
        schedulers=schedulers,
        controls=controls,
        traffic_shapes=traffic_shapes,
    )


def brute_force_key(point):
    """The deterministic total order, re-derived from raw fields."""
    return (
        point.cost_per_request,
        point.p99_latency_s,
        point.energy_per_request_j,
        point.point.label,
        point.point.scheduler,
        point.point.control,
        point.point.traffic,
    )


def brute_force_dominates(a, b):
    """Independent inline dominance check (the certifying re-derivation)."""
    av = (a.cost_per_request, a.p99_latency_s, a.energy_per_request_j)
    bv = (b.cost_per_request, b.p99_latency_s, b.energy_per_request_j)
    return av != bv and all(x <= y for x, y in zip(av, bv))


class TestParetoSoundness:
    def test_frontier_matches_brute_force_on_random_spaces(self, engine):
        rng = random.Random(SEED)
        for index in range(N_SPACES):
            space = random_space(rng, name=f"fuzz-{index}")
            evaluated = evaluate_space(space, engine=engine).points
            frontier = pareto_frontier(evaluated)
            context = f"space #{index}: {space.canonical()}"
            # Soundness: nothing on the frontier is dominated by anything.
            for point in frontier:
                dominating = [
                    other
                    for other in evaluated
                    if brute_force_dominates(other, point)
                ]
                assert not dominating, f"{context}: dominated frontier point"
            # Completeness: every non-dominated point is on the frontier.
            expected = sorted(
                (
                    point
                    for point in evaluated
                    if not any(
                        brute_force_dominates(other, point) for other in evaluated
                    )
                ),
                key=brute_force_key,
            )
            assert list(frontier) == expected, context
            assert frontier, f"{context}: a nonempty evaluation has a frontier"

    def test_dominates_agrees_with_brute_force(self, engine):
        rng = random.Random(SEED + 1)
        space = random_space(rng)
        evaluated = evaluate_space(space, engine=engine).points
        for a in evaluated:
            for b in evaluated:
                assert dominates(a, b) == brute_force_dominates(a, b)


class TestConstraintSolver:
    def test_cheapest_feasible_matches_exhaustive_scan(self, engine):
        rng = random.Random(SEED + 2)
        for index in range(N_SPACES):
            space = random_space(rng, name=f"constraint-{index}")
            evaluated = evaluate_space(space, engine=engine).points
            p99s = sorted(p.p99_latency_s for p in evaluated)
            for _ in range(4):
                max_p99 = rng.choice(p99s + [p99s[0] / 2.0, p99s[-1] * 2.0])
                min_attainment = rng.choice((None, 0.5, 0.9, 1.0))
                solution = cheapest_feasible(
                    evaluated, max_p99_s=max_p99, min_attainment=min_attainment
                )
                feasible = [
                    p
                    for p in evaluated
                    if p.p99_latency_s <= max_p99
                    and (
                        min_attainment is None
                        or p.slo_attainment >= min_attainment
                    )
                ]
                context = f"space #{index}: p99<={max_p99} att>={min_attainment}"
                if not feasible:
                    assert solution is None, context
                else:
                    expected = min(feasible, key=brute_force_key)
                    assert solution == expected, context

    def test_unconstrained_solver_returns_global_cheapest(self, engine):
        rng = random.Random(SEED + 3)
        space = random_space(rng)
        evaluated = evaluate_space(space, engine=engine).points
        solution = cheapest_feasible(evaluated)
        assert solution == min(evaluated, key=brute_force_key)


class TestShardUnion:
    def test_shard_partitions_match_serial_enumeration(self):
        rng = random.Random(SEED + 4)
        for index in range(N_SPACES):
            space = random_space(rng, name=f"shard-{index}")
            points = space.enumerate_points()
            for count in (2, 3, 5):
                shards = [
                    [
                        point
                        for point in points
                        if Shard(i, count).contains(plan_point_key(space, point))
                    ]
                    for i in range(count)
                ]
                assert_shard_union_matches_serial(
                    points, shards, key=lambda p: p.digest
                )

    def test_sharded_evaluation_union_equals_serial(self, engine, tmp_path):
        rng = random.Random(SEED + 5)
        space = random_space(rng)
        serial = evaluate_space(space, engine=engine).points
        store = ResultStore(tmp_path / "store")
        union = []
        for i in range(2):
            shard_eval = evaluate_space(
                space, engine=engine, store=store, shard=Shard(i, 2)
            )
            union.extend(shard_eval.points)
        assert sorted(union, key=brute_force_key) == sorted(
            serial, key=brute_force_key
        )
        # The shards populated the store: a warm serial pass re-evaluates
        # nothing and reproduces the serial results exactly.
        warm = evaluate_space(space, engine=engine, store=store)
        assert warm.fresh == 0
        assert warm.cached == len(serial)
        assert warm.points == serial


class TestDeterminism:
    def test_repeat_and_parallel_evaluation_are_bit_identical(self, engine):
        rng = random.Random(SEED + 6)
        for index in range(max(3, N_SPACES // 2)):
            space = random_space(rng, name=f"det-{index}")
            first = evaluate_space(space, engine=engine)
            again = evaluate_space(space, engine=engine)
            parallel = evaluate_space(space, engine=engine, jobs=2)
            context = f"space #{index}"
            assert again.points == first.points, context
            assert parallel.points == first.points, context

    def test_store_round_trip_is_exact(self, engine, tmp_path):
        rng = random.Random(SEED + 7)
        space = random_space(rng)
        store = ResultStore(tmp_path / "store")
        cold = evaluate_space(space, engine=engine, store=store)
        warm = evaluate_space(space, engine=engine, store=store)
        assert cold.fresh == len(cold.points) and cold.cached == 0
        assert warm.fresh == 0 and warm.cached == len(cold.points)
        assert warm.points == cold.points

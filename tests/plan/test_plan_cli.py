"""CLI surface of ``repro plan``: error paths, formats, shard differential.

Error paths follow the pinned-exit-code pattern of
``tests/experiments/test_cli.py``: status 2 and a one-line ``error:``
message, never a traceback.  The differential class pins the acceptance
criterion end to end: a 2-shard ``repro plan`` run assembles byte-identical
(modulo wall-time provenance) to the serial run, with zero re-evaluations
on the warm store.
"""

import json

import pytest

from repro.experiments.cli import main
from repro.perf.distributed import shard_index
from repro.plan.space import PLAN_SPECS, plan_point_key

from tests._differential import assert_text_matches_modulo_wall_time


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def write_spec(tmp_path, name="custom.json", **overrides):
    spec = {
        "devices": ["flexnerfer", "neurex"],
        "worker_counts": [1],
        "traffic": {"rate_rps": 20.0, "duration_s": 1.0, "sla_ms": 100.0},
    }
    spec.update(overrides)
    path = tmp_path / name
    path.write_text(json.dumps(spec))
    return path


class TestErrorPaths:
    """Every user mistake exits 2 with a one-line error (no tracebacks)."""

    def assert_one_liner(self, code, err, fragment):
        assert code == 2
        assert err.startswith("error:")
        assert err.count("\n") == 1
        assert fragment in err

    def test_unknown_spec(self, capsys):
        code, _, err = run_cli(capsys, "plan", "nope", "--no-store")
        self.assert_one_liner(code, err, "unknown plan spec 'nope'")

    def test_unknown_device_in_spec_file(self, capsys, tmp_path):
        path = write_spec(tmp_path, devices=["flexnerfer", "warpdrive"])
        code, _, err = run_cli(capsys, "plan", str(path), "--no-store")
        self.assert_one_liner(code, err, "unknown device 'warpdrive'")

    def test_infeasible_constraint(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--no-store", "--sla-ms", "0.001"
        )
        self.assert_one_liner(code, err, "infeasible constraint")
        assert "p99 <= 0.001 ms" in err

    def test_missing_spec_operand(self, capsys):
        code, _, err = run_cli(capsys, "plan")
        self.assert_one_liner(code, err, "exactly one plan spec")

    def test_bad_shard_designators(self, capsys):
        for bad in ("2", "a/b", "3/2", "-1/2"):
            code, _, err = run_cli(
                capsys, "plan", "tiny", "--no-store", "--shard", bad
            )
            assert code == 2, bad
            assert err.startswith("error: --shard:"), bad

    def test_bad_format(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--no-store", "--format", "xml"
        )
        self.assert_one_liner(code, err, "invalid format 'xml'")

    def test_bad_min_attainment(self, capsys):
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--no-store", "--min-attainment", "1.5"
        )
        self.assert_one_liner(code, err, "--min-attainment must be in [0, 1]")

    def test_store_flag_conflicts(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--no-store", "--store", str(tmp_path / "s")
        )
        self.assert_one_liner(code, err, "mutually exclusive")
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--no-store", "--pack", str(tmp_path / "p.json")
        )
        self.assert_one_liner(code, err, "--pack exports the store")

    def test_unknown_option(self, capsys):
        code, _, err = run_cli(capsys, "plan", "tiny", "--frobnicate", "1")
        self.assert_one_liner(code, err, "unknown option '--frobnicate'")


class TestOutputs:
    def test_table_output_lists_frontier(self, capsys):
        code, out, err = run_cli(capsys, "plan", "tiny", "--no-store")
        assert code == 0 and err == ""
        assert "plan tiny: 5 of 5 points evaluated (5 fresh, 0 cached)" in out
        assert "frontier" in out and "$/Mreq" in out
        assert "flexnerfer" in out

    def test_json_output_structure(self, capsys, tmp_path):
        out_path = tmp_path / "plan.json"
        code, out, _ = run_cli(
            capsys, "plan", "tiny", "--no-store", "--format", "json",
            "--out", str(out_path),
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["spec"] == "tiny"
        assert document["enumerated"] == 5 and document["evaluated"] == 5
        assert document["objectives"] == [
            "cost_per_request",
            "p99_latency_s",
            "energy_per_request_j",
        ]
        assert document["frontier"], "serial run must emit a nonempty frontier"
        assert document["constraint"] is None
        assert "wall_time_s" in document["provenance"]

    def test_csv_output_has_header_and_rows(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "tiny", "--no-store", "--format", "csv"
        )
        assert code == 0
        lines = out.splitlines()
        header = [l for l in lines if l.startswith("fleet,scheduler,control")]
        assert len(header) == 1
        assert "cost_per_request" in header[0]
        assert "traffic" in header[0]
        assert len(lines) > lines.index(header[0]) + 1, "no data rows"

    def test_multi_shape_spec_evaluates_every_shape(self, capsys, tmp_path):
        path = write_spec(
            tmp_path,
            devices=["flexnerfer"],
            traffic_shapes=["poisson", "flash-crowd", "marked-burst"],
        )
        out_path = tmp_path / "shaped-plan.json"
        code, _, _ = run_cli(
            capsys, "plan", str(path), "--no-store", "--format", "json",
            "--out", str(out_path),
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        assert document["enumerated"] == 3 and document["evaluated"] == 3
        assert document["space"]["traffic_shapes"] == [
            "poisson",
            "flash-crowd",
            "marked-burst",
        ]
        shapes = {row["traffic"] for row in document["frontier"]}
        assert shapes <= {"poisson", "flash-crowd", "marked-burst"}
        assert document["frontier"], "multi-shape run must emit a frontier"

    def test_constraint_solution_rendered(self, capsys):
        code, out, _ = run_cli(
            capsys, "plan", "tiny", "--no-store", "--sla-ms", "120",
            "--min-attainment", "0.9",
        )
        assert code == 0
        assert "cheapest feasible:" in out

    def test_empty_frontier_on_shard_owning_nothing(self, capsys, tmp_path):
        # A single-point space: exactly one of two shards owns the point,
        # so the other evaluates nothing and reports an empty frontier.
        path = write_spec(tmp_path, devices=["flexnerfer"])
        from repro.plan.space import load_space

        space = load_space(str(path))
        (point,) = space.enumerate_points()
        empty = 1 - shard_index(plan_point_key(space, point), 2)
        code, out, err = run_cli(
            capsys, "plan", str(path), "--no-store", "--shard", f"{empty}/2"
        )
        assert code == 0 and err == ""
        assert "0 of 1 points evaluated" in out
        assert "(empty frontier: no plan points evaluated)" in out


class TestShardDifferential:
    """The acceptance pin: sharded plan == serial plan, warm and byte-exact."""

    def plan(self, capsys, *argv):
        code, out, err = run_cli(capsys, "plan", *argv)
        assert code == 0, err
        return out

    def test_two_shard_assemble_matches_serial(self, capsys, tmp_path):
        serial_json = tmp_path / "serial.json"
        self.plan(
            capsys, "tiny", "--store", str(tmp_path / "serial-store"),
            "--format", "json", "--out", str(serial_json),
        )
        packs = []
        shard_points = 0
        for index in range(2):
            pack = tmp_path / f"pack-{index}.json"
            out = self.plan(
                capsys, "tiny", "--shard", f"{index}/2",
                "--store", str(tmp_path / f"shard-store-{index}"),
                "--pack", str(pack),
            )
            assert f"wrote pack {pack}" in out
            shard_points += int(out.split(" of ")[0].split(": ")[1])
            packs.append(pack)
        assert shard_points == 5, "two shards cover the whole space"

        code, out, err = run_cli(
            capsys, "assemble", *map(str, packs),
            "--store", str(tmp_path / "assembled-store"), "--no-run",
        )
        assert code == 0, err
        assert "merged 2 pack(s)" in out

        warm_json = tmp_path / "warm.json"
        out = self.plan(
            capsys, "tiny", "--store", str(tmp_path / "assembled-store"),
            "--format", "json", "--out", str(warm_json),
            "--check", str(serial_json),
        )
        # Zero re-evaluations on the warm store...
        assert "(0 fresh, 5 cached)" in out
        assert f"plan output matches {serial_json}" in out
        # ...and byte-identical output modulo the wall-time provenance.
        assert_text_matches_modulo_wall_time(
            serial_json.read_text(), warm_json.read_text()
        )

    def test_check_flags_divergent_reference(self, capsys, tmp_path):
        serial_json = tmp_path / "serial.json"
        store = str(tmp_path / "store")
        self.plan(
            capsys, "tiny", "--store", store,
            "--format", "json", "--out", str(serial_json),
        )
        doctored = serial_json.read_text().replace('"tiny"', '"tinier"')
        serial_json.write_text(doctored)
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--store", store,
            "--format", "json", "--check", str(serial_json),
        )
        assert code == 1
        assert "differs" in err

    def test_check_missing_reference(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "plan", "tiny", "--no-store",
            "--format", "json", "--check", str(tmp_path / "absent.json"),
        )
        assert code == 1
        assert "missing reference file" in err


class TestExperimentSurface:
    def test_plan_experiments_registered_with_planning_tag(self):
        from repro.experiments.registry import EXPERIMENTS, experiments_by_tag

        assert "plan-frontier" in EXPERIMENTS
        assert "plan-capacity" in EXPERIMENTS
        tagged = {e.id for e in experiments_by_tag("planning")}
        assert {"plan-frontier", "plan-capacity"} <= tagged

    def test_usage_screen_documents_plan(self, capsys):
        code, out, _ = run_cli(capsys, "--help")
        assert code == 0
        assert "plan" in out and "--sla-ms" in out


@pytest.fixture(autouse=True)
def _quiet_env(monkeypatch, tmp_path):
    """Default-store fallbacks land in the test's tmp dir, never the repo."""
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "default-store"))

"""Shared pytest fixtures."""

import os

import numpy as np
import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Point the persistent result store at a throwaway directory.

    CLI tests exercise ``repro run`` with its default store attached; this
    keeps them from reading or writing the developer's ``.repro-store``
    in the checkout.
    """
    store_dir = tmp_path_factory.mktemp("repro-store")
    previous = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(store_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:  # pragma: no cover - depends on the invoking environment
        os.environ["REPRO_STORE_DIR"] = previous


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)

"""Shared pytest fixtures."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)

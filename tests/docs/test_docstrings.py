"""Lightweight pydocstyle-style check over the public API surface.

The repo promises (docs/architecture.md) that ``pydoc repro.core.device``,
``pydoc repro.serve.fleet`` etc. are usable references.  This test enforces
it without external tooling: every public module, class, function, method
and property on the enforced surface must carry a docstring whose summary
line ends in a period (or a reST ``::`` literal-block marker).
"""

import importlib
import inspect

import pytest

#: Modules whose public surface must be fully documented.
ENFORCED_MODULES = (
    "repro.core.device",
    "repro.sim.sweep",
    "repro.experiments.api",
    "repro.experiments.catalog",
    "repro.experiments.cli",
    "repro.perf",
    "repro.perf.store",
    "repro.perf.bench",
    "repro.perf.distributed",
    "repro.plan",
    "repro.plan.space",
    "repro.plan.evaluate",
    "repro.plan.pareto",
    "repro.serve",
    "repro.serve.request",
    "repro.serve.scheduler",
    "repro.serve.fleet",
    "repro.serve.control",
    "repro.serve.report",
    "repro.serve.traffic",
    "repro.serve.traffic.importer",
    "repro.serve.traffic.session",
    "repro.serve.traffic.streams",
    "repro.analysis",
    "repro.analysis.base",
    "repro.analysis.baseline",
    "repro.analysis.driver",
    "repro.analysis.report",
    "repro.analysis.rules",
)


def _class_members(qualname: str, cls: type):
    """Yield (qualname, object) for the public members defined on ``cls``."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, (staticmethod, classmethod)):
            member = member.__func__
        if inspect.isfunction(member) or isinstance(member, property):
            yield f"{qualname}.{name}", member


def _public_objects(module):
    """Yield every (qualname, object) the docstring rule applies to."""
    yield module.__name__, module
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are checked where they are defined
        qualname = f"{module.__name__}.{name}"
        yield qualname, obj
        if inspect.isclass(obj):
            yield from _class_members(qualname, obj)


def _docstring_problem(obj) -> str | None:
    """Why ``obj``'s docstring violates the rule (None when it is fine)."""
    doc = inspect.getdoc(obj)
    if not doc or not doc.strip():
        return "has no docstring"
    summary = doc.strip().splitlines()[0].strip()
    if not (summary.endswith(".") or summary.endswith("::")):
        return f"summary line does not end with a period: {summary!r}"
    return None


@pytest.mark.parametrize("module_name", ENFORCED_MODULES)
def test_public_surface_is_documented(module_name):
    module = importlib.import_module(module_name)
    problems = [
        f"{qualname}: {problem}"
        for qualname, obj in _public_objects(module)
        if (problem := _docstring_problem(obj)) is not None
    ]
    assert not problems, "\n".join(problems)


def test_enforced_surface_is_nontrivial():
    """The checker itself sees a meaningful number of objects (no silent no-op)."""
    total = sum(
        len(list(_public_objects(importlib.import_module(m))))
        for m in ENFORCED_MODULES
    )
    assert total > 80, f"only {total} objects enforced; surface walk regressed?"

"""Tests for precision modes and tile-shape rules."""

import pytest

from repro.sparse.formats import (
    Precision,
    SparsityFormat,
    index_bits,
    tile_shape_for_precision,
)


class TestPrecision:
    def test_bits(self):
        assert Precision.INT4.bits == 4
        assert Precision.INT8.bits == 8
        assert Precision.INT16.bits == 16

    def test_ranges(self):
        assert Precision.INT4.max_value == 7
        assert Precision.INT4.min_value == -8
        assert Precision.INT8.max_value == 127
        assert Precision.INT16.min_value == -32768

    def test_from_bits(self):
        assert Precision.from_bits(8) is Precision.INT8

    def test_from_bits_rejects_unsupported(self):
        with pytest.raises(ValueError):
            Precision.from_bits(32)


class TestSparsityFormat:
    def test_compressed_flag(self):
        assert not SparsityFormat.NONE.is_compressed
        for fmt in (SparsityFormat.COO, SparsityFormat.CSR, SparsityFormat.CSC, SparsityFormat.BITMAP):
            assert fmt.is_compressed


class TestTileShape:
    def test_int16_base_tile(self):
        assert tile_shape_for_precision(Precision.INT16) == (64, 64)

    def test_tile_edge_doubles_per_precision_step(self):
        assert tile_shape_for_precision(Precision.INT8) == (128, 128)
        assert tile_shape_for_precision(Precision.INT4) == (256, 256)

    def test_custom_base_edge(self):
        assert tile_shape_for_precision(Precision.INT8, base_edge=16) == (32, 32)


class TestIndexBits:
    @pytest.mark.parametrize(
        "dim, expected", [(1, 1), (2, 1), (3, 2), (64, 6), (65, 7), (256, 8)]
    )
    def test_values(self, dim, expected):
        assert index_bits(dim) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            index_bits(0)

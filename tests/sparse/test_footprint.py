"""Tests for the analytical footprint model (paper Fig. 7 behaviour)."""

import pytest

from repro.sparse.footprint import FootprintModel, footprint_bits, footprint_ratio
from repro.sparse.formats import Precision, SparsityFormat


class TestFootprintModel:
    def test_native_tiles(self):
        assert FootprintModel.for_precision(Precision.INT16).num_elements == 64 * 64
        assert FootprintModel.for_precision(Precision.INT8).num_elements == 128 * 128
        assert FootprintModel.for_precision(Precision.INT4).num_elements == 256 * 256

    def test_dense_bits_independent_of_sparsity(self):
        model = FootprintModel.for_precision(Precision.INT16)
        assert model.bits(SparsityFormat.NONE, 0.1) == model.bits(SparsityFormat.NONE, 0.9)

    def test_compressed_bits_decrease_with_sparsity(self):
        model = FootprintModel.for_precision(Precision.INT8)
        for fmt in (SparsityFormat.COO, SparsityFormat.CSR, SparsityFormat.BITMAP):
            assert model.bits(fmt, 0.9) < model.bits(fmt, 0.1)

    def test_bitmap_formula(self):
        model = FootprintModel(rows=64, cols=64, precision=Precision.INT16)
        nnz = model.nnz_for_sparsity(0.5)
        assert model.bits(SparsityFormat.BITMAP, 0.5) == 64 * 64 + nnz * 16

    def test_invalid_sparsity_rejected(self):
        model = FootprintModel.for_precision(Precision.INT16)
        with pytest.raises(ValueError):
            model.bits(SparsityFormat.COO, 1.5)

    def test_unknown_format_rejected(self):
        model = FootprintModel.for_precision(Precision.INT16)
        with pytest.raises(ValueError):
            model.bits("not-a-format", 0.5)


class TestPaperTrends:
    """The qualitative trends of paper Fig. 7."""

    def test_compression_helps_at_high_sparsity(self):
        for precision in Precision:
            model = FootprintModel.for_precision(precision)
            for fmt in (SparsityFormat.COO, SparsityFormat.CSR, SparsityFormat.BITMAP):
                assert model.ratio_over_none(fmt, 0.99) < 1.0

    def test_compression_hurts_at_low_sparsity(self):
        for precision in Precision:
            model = FootprintModel.for_precision(precision)
            assert model.ratio_over_none(SparsityFormat.COO, 0.01) > 1.0

    def test_lower_precision_shifts_breakeven_right(self):
        """The COO break-even sparsity grows as the precision shrinks."""
        def breakeven(precision):
            model = FootprintModel.for_precision(precision)
            for pct in range(1, 100):
                if model.ratio_over_none(SparsityFormat.COO, pct / 100.0) < 1.0:
                    return pct
            return 100

        assert breakeven(Precision.INT16) < breakeven(Precision.INT8) < breakeven(Precision.INT4)

    def test_lower_precision_expands_relative_metadata_cost(self):
        ratio16 = FootprintModel.for_precision(Precision.INT16).ratio_over_none(
            SparsityFormat.COO, 0.01
        )
        ratio4 = FootprintModel.for_precision(Precision.INT4).ratio_over_none(
            SparsityFormat.COO, 0.01
        )
        assert ratio4 > ratio16


class TestHelpers:
    def test_footprint_bits_matches_model(self):
        model = FootprintModel.for_precision(Precision.INT8)
        assert footprint_bits(SparsityFormat.CSR, 0.5, Precision.INT8) == model.bits(
            SparsityFormat.CSR, 0.5
        )

    def test_footprint_ratio_dense_is_one(self):
        assert footprint_ratio(SparsityFormat.NONE, 0.42, Precision.INT4) == 1.0

    def test_custom_shape(self):
        bits = footprint_bits(SparsityFormat.NONE, 0.0, Precision.INT16, shape=(10, 10))
        assert bits == 100 * 16

    def test_sweep_returns_one_value_per_ratio(self):
        model = FootprintModel.for_precision(Precision.INT16)
        values = model.sweep(SparsityFormat.BITMAP, [0.1, 0.5, 0.9])
        assert len(values) == 3
        assert values[0] > values[-1]

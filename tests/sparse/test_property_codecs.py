"""Property-based tests (hypothesis) for the sparse codecs and selector."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.codecs import get_codec
from repro.sparse.footprint import FootprintModel
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.selector import FormatSelector
from repro.sparse.tensor import sparsity_ratio

_matrices = arrays(
    dtype=np.int16,
    shape=st.tuples(st.integers(1, 24), st.integers(1, 24)),
    elements=st.integers(-128, 127),
)


@given(matrix=_matrices, fmt=st.sampled_from(list(SparsityFormat)))
@settings(max_examples=60, deadline=None)
def test_codec_roundtrip_is_lossless(matrix, fmt):
    """Encoding then decoding any integer tile reproduces it exactly."""
    codec = get_codec(fmt)
    decoded = codec.decode(codec.encode(matrix, Precision.INT16))
    np.testing.assert_array_equal(decoded, matrix)


@given(matrix=_matrices)
@settings(max_examples=60, deadline=None)
def test_encoded_nnz_never_exceeds_size(matrix):
    for fmt in SparsityFormat:
        encoded = get_codec(fmt).encode(matrix, Precision.INT16)
        assert 0 <= encoded.nnz <= matrix.size
        assert encoded.nnz == np.count_nonzero(matrix)


@given(matrix=_matrices)
@settings(max_examples=40, deadline=None)
def test_storage_bits_tracks_footprint_model(matrix):
    """Exact codec storage matches the analytical model for the same tile."""
    rows, cols = matrix.shape
    model = FootprintModel(rows=rows, cols=cols, precision=Precision.INT16)
    sparsity = sparsity_ratio(matrix)
    for fmt in (SparsityFormat.NONE, SparsityFormat.COO, SparsityFormat.BITMAP):
        encoded = get_codec(fmt).encode(matrix, Precision.INT16)
        assert encoded.storage_bits == int(model.bits(fmt, sparsity))


@given(
    sparsity=st.floats(0.0, 1.0),
    precision=st.sampled_from(list(Precision)),
)
@settings(max_examples=100, deadline=None)
def test_selector_choice_is_minimal(sparsity, precision):
    """The selector never picks a format with a larger footprint than another candidate."""
    decision = FormatSelector().decide(sparsity, precision)
    assert decision.bits == min(decision.bits_per_format.values())
    assert decision.savings_over_none >= -1e-9

"""Round-trip and storage-cost tests for the sparsity-format codecs."""

import numpy as np
import pytest

from repro.sparse.codecs import (
    BitmapCodec,
    COOCodec,
    CSCCodec,
    CSRCodec,
    DenseCodec,
    get_codec,
)
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.tensor import random_sparse_matrix

ALL_CODECS = [DenseCodec(), COOCodec(), CSRCodec(), CSCCodec(), BitmapCodec()]


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.fmt.value)
@pytest.mark.parametrize("sparsity", [0.0, 0.3, 0.7, 0.95, 1.0])
def test_roundtrip(codec, sparsity, rng):
    matrix = random_sparse_matrix((32, 48), sparsity, Precision.INT8, rng)
    encoded = codec.encode(matrix, Precision.INT8)
    decoded = codec.decode(encoded)
    np.testing.assert_array_equal(decoded, matrix)


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.fmt.value)
def test_roundtrip_non_square(codec, rng):
    matrix = random_sparse_matrix((7, 129), 0.6, Precision.INT16, rng)
    decoded = codec.decode(codec.encode(matrix, Precision.INT16))
    np.testing.assert_array_equal(decoded, matrix)


def test_nnz_matches(rng):
    matrix = random_sparse_matrix((64, 64), 0.8, Precision.INT16, rng)
    for codec in ALL_CODECS:
        assert codec.encode(matrix, Precision.INT16).nnz == np.count_nonzero(matrix)


def test_dense_codec_stores_every_element(rng):
    matrix = random_sparse_matrix((16, 16), 0.5, Precision.INT16, rng)
    encoded = DenseCodec().encode(matrix, Precision.INT16)
    assert encoded.values.size == matrix.size
    assert encoded.storage_bits == 16 * 16 * 16


def test_bitmap_storage_bits(rng):
    matrix = random_sparse_matrix((64, 64), 0.9, Precision.INT16, rng)
    encoded = BitmapCodec().encode(matrix, Precision.INT16)
    nnz = np.count_nonzero(matrix)
    assert encoded.storage_bits == 64 * 64 + nnz * 16


def test_coo_storage_bits(rng):
    matrix = random_sparse_matrix((64, 64), 0.9, Precision.INT16, rng)
    encoded = COOCodec().encode(matrix, Precision.INT16)
    nnz = np.count_nonzero(matrix)
    assert encoded.storage_bits == nnz * (16 + 6 + 6)


def test_highly_sparse_bitmap_beats_dense(rng):
    matrix = random_sparse_matrix((64, 64), 0.9, Precision.INT16, rng)
    dense_bits = DenseCodec().encode(matrix, Precision.INT16).storage_bits
    bitmap_bits = BitmapCodec().encode(matrix, Precision.INT16).storage_bits
    assert bitmap_bits < dense_bits


def test_codec_rejects_1d_input():
    with pytest.raises(ValueError):
        COOCodec().encode(np.array([1, 2, 3]), Precision.INT8)


def test_get_codec_returns_matching_format():
    for fmt in SparsityFormat:
        assert get_codec(fmt).fmt is fmt


def test_all_zero_matrix_roundtrip():
    matrix = np.zeros((8, 8), dtype=np.int32)
    for codec in ALL_CODECS:
        decoded = codec.decode(codec.encode(matrix, Precision.INT4))
        np.testing.assert_array_equal(decoded, matrix)

"""Tests for the SparseTensor wrapper and random generation."""

import numpy as np
import pytest

from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.tensor import SparseTensor, random_sparse_matrix, sparsity_ratio


class TestSparsityRatio:
    def test_dense(self):
        assert sparsity_ratio(np.ones((4, 4))) == 0.0

    def test_all_zero(self):
        assert sparsity_ratio(np.zeros((4, 4))) == 1.0

    def test_half(self):
        matrix = np.array([[1, 0], [0, 2]])
        assert sparsity_ratio(matrix) == pytest.approx(0.5)

    def test_empty(self):
        assert sparsity_ratio(np.zeros((0, 0))) == 0.0


class TestRandomSparseMatrix:
    @pytest.mark.parametrize("sparsity", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_exact_sparsity(self, sparsity, rng):
        matrix = random_sparse_matrix((50, 40), sparsity, rng=rng)
        assert sparsity_ratio(matrix) == pytest.approx(sparsity, abs=1e-3)

    def test_values_within_precision_range(self, rng):
        matrix = random_sparse_matrix((32, 32), 0.5, Precision.INT4, rng)
        nonzero = matrix[matrix != 0]
        assert nonzero.max() <= Precision.INT4.max_value
        assert nonzero.min() >= -Precision.INT4.max_value

    def test_invalid_sparsity(self, rng):
        with pytest.raises(ValueError):
            random_sparse_matrix((4, 4), 1.5, rng=rng)


class TestSparseTensor:
    def test_metadata(self, rng):
        tensor = SparseTensor.random((16, 16), 0.75, rng=rng)
        assert tensor.shape == (16, 16)
        assert tensor.sparsity == pytest.approx(0.75, abs=0.01)
        assert tensor.nnz == 16 * 16 - int(round(0.75 * 256))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SparseTensor(np.zeros(5))

    def test_encode_decode_roundtrip(self, rng):
        tensor = SparseTensor.random((32, 32), 0.6, Precision.INT8, rng)
        for fmt in SparsityFormat:
            restored = SparseTensor.decode(tensor.encode(fmt))
            np.testing.assert_array_equal(restored.data, tensor.data)

    def test_default_encode_uses_optimal_format(self, rng):
        sparse = SparseTensor.random((64, 64), 0.95, Precision.INT16, rng)
        dense = SparseTensor.random((64, 64), 0.0, Precision.INT16, rng)
        assert sparse.encode().fmt is not SparsityFormat.NONE
        assert dense.encode().fmt is SparsityFormat.NONE

"""Tests for optimal-format selection (paper Fig. 8 behaviour)."""

from repro.sparse.footprint import FootprintModel
from repro.sparse.formats import Precision, SparsityFormat
from repro.sparse.selector import CANDIDATE_FORMATS, FormatSelector, optimal_format


class TestFormatSelector:
    def test_dense_wins_at_very_low_sparsity(self):
        for precision in Precision:
            assert optimal_format(0.01, precision) is SparsityFormat.NONE

    def test_compressed_format_wins_at_high_sparsity(self):
        for precision in Precision:
            assert optimal_format(0.95, precision) is not SparsityFormat.NONE

    def test_coo_wins_at_extreme_sparsity(self):
        assert optimal_format(0.999, Precision.INT16) is SparsityFormat.COO

    def test_bitmap_wins_in_mid_range_int16(self):
        assert optimal_format(0.5, Precision.INT16) is SparsityFormat.BITMAP

    def test_decision_reports_all_candidates(self):
        decision = FormatSelector().decide(0.5, Precision.INT8)
        assert set(decision.bits_per_format) == set(CANDIDATE_FORMATS)

    def test_decision_is_actually_minimal(self):
        decision = FormatSelector().decide(0.7, Precision.INT4)
        assert decision.bits == min(decision.bits_per_format.values())

    def test_savings_non_negative_for_chosen_format(self):
        for sparsity in (0.05, 0.3, 0.6, 0.9, 0.99):
            decision = FormatSelector().decide(sparsity, Precision.INT16)
            assert decision.savings_over_none >= 0.0

    def test_selection_matches_footprint_model(self):
        selector = FormatSelector()
        model = FootprintModel.for_precision(Precision.INT8)
        for sparsity in (0.1, 0.4, 0.8, 0.99):
            decision = selector.decide(sparsity, Precision.INT8)
            best = min(CANDIDATE_FORMATS, key=lambda f: model.bits(f, sparsity))
            assert decision.fmt is best

    def test_transition_threshold_moves_right_at_lower_precision(self):
        """The sparsity where compression first wins grows as precision drops."""
        def first_win(precision):
            for pct in range(1, 100):
                if optimal_format(pct / 100.0, precision) is not SparsityFormat.NONE:
                    return pct
            return 100

        assert first_win(Precision.INT16) <= first_win(Precision.INT8) <= first_win(Precision.INT4)

    def test_sweep_length(self):
        decisions = FormatSelector().sweep([0.1, 0.5, 0.9], Precision.INT16)
        assert len(decisions) == 3

    def test_custom_shape_selector(self):
        selector = FormatSelector(shape=(8, 8))
        decision = selector.decide(0.9, Precision.INT16)
        assert decision.fmt in CANDIDATE_FORMATS

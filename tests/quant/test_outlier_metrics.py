"""Tests for outlier-aware quantization and the PSNR / MSE metrics."""

import numpy as np
import pytest

from repro.quant.metrics import mse, psnr
from repro.quant.outlier import outlier_quantize
from repro.quant.quantize import quantize
from repro.sparse.formats import Precision


def _heavy_tailed(rng, size=4096):
    """A distribution with rare large outliers (like NeRF feature tensors)."""
    body = rng.normal(0, 0.1, size=size)
    outlier_positions = rng.choice(size, size=size // 100, replace=False)
    body[outlier_positions] = rng.normal(0, 5.0, size=outlier_positions.size)
    return body


class TestOutlierQuantize:
    def test_outlier_fraction_is_small(self, rng):
        tensor = _heavy_tailed(rng)
        result = outlier_quantize(tensor, Precision.INT4)
        assert 0.0 < result.outlier_fraction < 0.1

    def test_outlier_aware_beats_plain_quantization(self, rng):
        """Keeping outliers at INT16 recovers accuracy (paper Fig. 20(a))."""
        tensor = _heavy_tailed(rng)
        for precision in (Precision.INT4, Precision.INT8):
            plain_error = np.mean((quantize(tensor, precision).dequantize() - tensor) ** 2)
            aware_error = np.mean((outlier_quantize(tensor, precision).dequantize() - tensor) ** 2)
            assert aware_error < plain_error

    def test_shape_preserved(self, rng):
        tensor = rng.normal(size=(16, 8))
        assert outlier_quantize(tensor, Precision.INT8).dequantize().shape == (16, 8)

    def test_empty_tensor(self):
        result = outlier_quantize(np.zeros((0,)), Precision.INT8)
        assert result.outlier_fraction == 0.0
        assert result.dequantize().size == 0

    def test_uniform_tensor_has_no_outliers(self):
        result = outlier_quantize(np.ones(100), Precision.INT8)
        assert result.outlier_indices.size == 0


class TestMetrics:
    def test_identical_images_infinite_psnr(self):
        image = np.random.default_rng(0).random((8, 8, 3))
        assert psnr(image, image) == float("inf")

    def test_mse_basic(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_psnr_decreases_with_noise(self, rng):
        image = rng.random((16, 16, 3))
        small_noise = image + rng.normal(0, 0.01, image.shape)
        big_noise = image + rng.normal(0, 0.1, image.shape)
        assert psnr(image, small_noise) > psnr(image, big_noise)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_invalid_data_range(self):
        with pytest.raises(ValueError):
            psnr(np.zeros(4), np.zeros(4), data_range=0.0)

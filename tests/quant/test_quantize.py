"""Tests for symmetric quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.quantize import quantization_error, quantize
from repro.sparse.formats import Precision


class TestQuantize:
    def test_values_stay_in_range(self, rng):
        tensor = rng.normal(0, 10, size=(64, 64))
        for precision in Precision:
            q = quantize(tensor, precision)
            assert q.data.max() <= precision.max_value
            assert q.data.min() >= precision.min_value

    def test_roundtrip_error_bounded_by_step(self, rng):
        tensor = rng.uniform(-1, 1, size=(100,))
        q = quantize(tensor, Precision.INT16)
        np.testing.assert_allclose(q.dequantize(), tensor, atol=q.scale)

    def test_higher_precision_smaller_error(self, rng):
        tensor = rng.normal(0, 1, size=(500,))
        errors = [quantization_error(tensor, p) for p in (Precision.INT4, Precision.INT8, Precision.INT16)]
        assert errors[0] > errors[1] > errors[2]

    def test_explicit_scale_is_used(self):
        q = quantize(np.array([1.0, 2.0]), Precision.INT8, scale=0.5)
        np.testing.assert_array_equal(q.data, [2, 4])

    def test_zero_tensor(self):
        q = quantize(np.zeros(10), Precision.INT8)
        assert np.all(q.data == 0)
        assert q.scale == 1.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            quantize(np.ones(4), Precision.INT8, scale=0.0)

    def test_empty_tensor_error_is_zero(self):
        assert quantization_error(np.array([]), Precision.INT4) == 0.0


@given(
    tensor=arrays(
        dtype=np.float64,
        shape=st.integers(1, 64),
        elements=st.floats(-1e3, 1e3, allow_nan=False),
    ),
    precision=st.sampled_from(list(Precision)),
)
@settings(max_examples=80, deadline=None)
def test_dequantized_error_bounded_by_half_step_times_clip(tensor, precision):
    """|x - dequant(quant(x))| <= scale/2 for values inside the clip range."""
    q = quantize(tensor, precision)
    reconstructed = q.dequantize()
    inside = np.abs(tensor) <= precision.max_value * q.scale
    np.testing.assert_array_less(
        np.abs(tensor[inside] - reconstructed[inside]), q.scale * 0.5 + 1e-12
    )

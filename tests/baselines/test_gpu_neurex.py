"""Tests for the GPU roofline model and the NeuRex baseline."""

import pytest

from repro.baselines.gpu import GPUModel, JETSON_NANO, RTX_2080_TI, RTX_4090, XAVIER_NX
from repro.baselines.neurex import NeuRex
from repro.nerf.models import FrameConfig, get_model
from repro.nerf.workload import GEMMOp
from repro.sparse.formats import Precision


@pytest.fixture(scope="module")
def workload():
    return get_model("instant-ngp").build_workload(FrameConfig())


class TestGPUModel:
    def test_gemm_efficiency_depends_on_layer_size(self):
        gpu = GPUModel()
        tiny = GEMMOp("tiny", m=1000, n=16, k=16)
        large = GEMMOp("large", m=1000, n=512, k=512)
        assert gpu.gemm_efficiency(tiny) < gpu.gemm_efficiency(large)
        assert gpu.gemm_efficiency(large) == pytest.approx(GPUModel.MAX_GEMM_EFFICIENCY)

    def test_sparsity_gives_gpu_no_speedup(self):
        gpu = GPUModel()
        dense = get_model("nerf").build_workload(FrameConfig())
        pruned = dense.pruned(0.9)
        assert gpu.render_frame(pruned).latency_s == pytest.approx(
            gpu.render_frame(dense).latency_s
        )

    def test_every_model_exceeds_vr_threshold(self):
        """Paper Fig. 1: all seven models exceed 16.8 ms on the 2080 Ti."""
        gpu = GPUModel(RTX_2080_TI)
        config = FrameConfig()
        for name in ("nerf", "kilonerf", "instant-ngp", "tensorf"):
            report = gpu.render_frame(get_model(name).build_workload(config))
            assert report.frame_time_ms > 16.8

    def test_faster_gpu_renders_faster(self, workload):
        slow = GPUModel(RTX_2080_TI).render_frame(workload)
        fast = GPUModel(RTX_4090).render_frame(workload)
        assert fast.latency_s < slow.latency_s

    def test_edge_gpus_are_slower(self, workload):
        desktop = GPUModel(RTX_2080_TI).render_frame(workload)
        nano = GPUModel(JETSON_NANO).render_frame(workload)
        xavier = GPUModel(XAVIER_NX).render_frame(workload)
        assert nano.latency_s > xavier.latency_s > desktop.latency_s

    def test_effective_power_between_idle_and_typical(self):
        gpu = GPUModel()
        assert (
            GPUModel.IDLE_POWER_FRACTION * RTX_2080_TI.typical_power_w
            <= gpu._effective_power_w(0.1)
            <= RTX_2080_TI.typical_power_w
        )

    def test_energy_positive(self, workload):
        assert GPUModel().render_frame(workload).energy_j > 0


class TestNeuRex:
    def test_published_cost(self):
        neurex = NeuRex()
        assert neurex.area().total_mm2 == pytest.approx(22.8, rel=0.01)
        assert neurex.power().total_w == pytest.approx(5.1, rel=0.01)

    def test_faster_than_gpu_on_instant_ngp(self, workload):
        gpu_report = GPUModel().render_frame(workload)
        neurex_report = NeuRex().render_frame(workload)
        assert neurex_report.latency_s < gpu_report.latency_s

    def test_pruning_and_precision_do_not_change_neurex(self, workload):
        """Fig. 19: NeuRex's bars are flat across pruning ratios."""
        neurex = NeuRex()
        baseline = neurex.render_frame(workload)
        pruned = neurex.render_frame(workload, pruning_ratio=0.9)
        low_precision = neurex.render_frame(workload, precision=Precision.INT4)
        assert pruned.latency_s == pytest.approx(baseline.latency_s)
        assert low_precision.latency_s == pytest.approx(baseline.latency_s)

    def test_trace_covers_all_ops(self, workload):
        report = NeuRex().render_frame(workload)
        assert len(report.trace.records) == len(workload.ops)

"""Tests for the Table 3 array baselines and the Fig. 4 utilisation models."""

import pytest

from repro.baselines.arrays import (
    BitFusionArray,
    BitScalableSigmaArray,
    SigmaArray,
    TABLE3_BASELINES,
)
from repro.baselines.nvdla import NVDLAModel
from repro.baselines.tpu import TPUModel
from repro.sparse.formats import Precision


class TestTable3Baselines:
    def test_published_power_used(self):
        assert SigmaArray().power_w(Precision.INT16) == 5.8
        assert BitFusionArray().power_w(Precision.INT4) == 5.8
        assert BitScalableSigmaArray().power_w(Precision.INT16) == 8.2

    def test_area_close_to_paper(self):
        assert SigmaArray().area().total_mm2 == pytest.approx(20.5, rel=0.2)
        assert BitFusionArray().area().total_mm2 == pytest.approx(31.9, rel=0.1)
        assert BitScalableSigmaArray().area().total_mm2 == pytest.approx(40.8, rel=0.1)

    def test_sigma_is_int16_only(self):
        assert SigmaArray().supported_precisions() == (Precision.INT16,)
        assert len(BitFusionArray().supported_precisions()) == 3

    def test_peak_efficiency_close_to_paper(self):
        assert SigmaArray().peak_efficiency(Precision.INT16) == pytest.approx(1.1, abs=0.15)
        assert BitFusionArray().peak_efficiency(Precision.INT4) == pytest.approx(18.1, rel=0.05)
        assert BitScalableSigmaArray().peak_efficiency(Precision.INT4) == pytest.approx(5.7, rel=0.05)

    def test_bs_sigma_int4_peak_limited_by_interconnect(self):
        bs_sigma = BitScalableSigmaArray()
        bitfusion = BitFusionArray()
        assert bs_sigma.peak_tops(Precision.INT4) == pytest.approx(
            0.5 * bitfusion.peak_tops(Precision.INT4)
        )

    def test_effective_efficiency_ordering(self):
        """On sparse irregular GEMMs: sparsity-aware flexible arrays win."""
        sigma_eff = SigmaArray().effective_efficiency(Precision.INT16)
        bitfusion_eff = BitFusionArray().effective_efficiency(Precision.INT16)
        assert bitfusion_eff < sigma_eff

    def test_spec_rows_complete(self):
        for cls in TABLE3_BASELINES:
            row = cls().spec_row()
            assert row.area_mm2 > 0
            assert set(row.power_w) == set(row.precisions)
            assert all(v > 0 for v in row.peak_efficiency.values())


class TestFig4Models:
    def test_early_cnn_layer(self):
        assert NVDLAModel().conv_utilization(3, 2) == pytest.approx(0.375)
        assert TPUModel().conv_utilization(3, 2, spatial_positions=36) == pytest.approx(0.375)

    def test_late_cnn_layer(self):
        assert NVDLAModel().conv_utilization(64, 64) == pytest.approx(1.0)
        assert TPUModel().conv_utilization(64, 64, spatial_positions=2) == pytest.approx(0.5)

    def test_irregular_dense_gemm(self):
        assert NVDLAModel().gemm_utilization(4, 5, 4) == pytest.approx(0.0625)
        assert TPUModel().gemm_utilization(4, 5, 4) == pytest.approx(1.0)

    def test_irregular_sparse_gemm(self):
        assert TPUModel().gemm_utilization(4, 5, 4, density=0.6875) == pytest.approx(0.6875)
        assert NVDLAModel().gemm_utilization(4, 5, 4, density=0.6875) == pytest.approx(0.0625)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            NVDLAModel().conv_utilization(0, 4)
        with pytest.raises(ValueError):
            TPUModel().gemm_utilization(1, 1, 1, density=0.0)

"""Tests for dataflow classification (unicast / multicast / broadcast)."""

from repro.noc.dataflow import (
    DataflowMode,
    classify_assignment,
    column_dataflows,
    row_dataflows,
    unique_fetches,
)


class TestClassifyAssignment:
    def test_broadcast(self):
        assert classify_assignment(["A", "A", "A", "A"]) is DataflowMode.BROADCAST

    def test_unicast(self):
        assert classify_assignment(["A", "B", "C", "D"]) is DataflowMode.UNICAST

    def test_multicast(self):
        assert classify_assignment(["A", "A", "B", "C"]) is DataflowMode.MULTICAST

    def test_idle(self):
        assert classify_assignment([None, None]) is DataflowMode.IDLE

    def test_single_destination_is_unicast(self):
        assert classify_assignment(["A"]) is DataflowMode.UNICAST

    def test_partial_assignment_with_repeats_is_multicast(self):
        assert classify_assignment(["A", "A", None, None]) is DataflowMode.MULTICAST

    def test_same_value_everywhere_but_holes_is_multicast_not_broadcast(self):
        # A true broadcast reaches every destination; holes demote it.
        assert classify_assignment(["A", None, "A", "A"]) is DataflowMode.MULTICAST


class TestGridClassification:
    def test_fig5_style_mapping(self):
        """Row-wise pattern of paper Fig. 5: broadcast, multicast and unicast rows."""
        grid = [
            ["A", "A", "A", "A"],   # broadcast
            ["B", "B", "C", "C"],   # multicast
            ["D", "E", "F", "G"],   # unicast
            [None, None, None, "H"],  # single element
        ]
        modes = row_dataflows(grid)
        assert modes == [
            DataflowMode.BROADCAST,
            DataflowMode.MULTICAST,
            DataflowMode.UNICAST,
            DataflowMode.UNICAST,
        ]

    def test_column_dataflows(self):
        grid = [
            ["A", "B"],
            ["A", "C"],
        ]
        modes = column_dataflows(grid)
        assert modes[0] is DataflowMode.BROADCAST
        assert modes[1] is DataflowMode.UNICAST

    def test_empty_grid(self):
        assert column_dataflows([]) == []


class TestUniqueFetches:
    def test_counts_distinct_values(self):
        assert unique_fetches(["A", "A", "B", None]) == 2

    def test_all_none(self):
        assert unique_fetches([None, None]) == 0

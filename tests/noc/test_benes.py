"""Tests (including property-based) for the Benes network."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.benes import BenesNetwork


class TestStructure:
    def test_stage_and_switch_counts(self):
        assert BenesNetwork(2).num_stages == 1
        assert BenesNetwork(4).num_stages == 3
        assert BenesNetwork(8).num_stages == 5
        assert BenesNetwork(8).num_switches == 5 * 4
        assert BenesNetwork(64).num_stages == 11

    def test_rejects_non_power_of_two(self):
        for size in (0, 1, 3, 6, 12):
            with pytest.raises(ValueError):
                BenesNetwork(size)


class TestRouting:
    def test_identity_permutation(self):
        net = BenesNetwork(8)
        values = list(range(8))
        assert net.apply(list(range(8)), values) == values

    def test_reverse_permutation(self):
        net = BenesNetwork(8)
        perm = list(reversed(range(8)))
        assert net.apply(perm, list("abcdefgh")) == list("hgfedcba")

    def test_all_permutations_of_4_are_routable(self):
        net = BenesNetwork(4)
        values = ["w", "x", "y", "z"]
        for perm in itertools.permutations(range(4)):
            routed = net.apply(list(perm), values)
            assert routed == [values[perm[i]] for i in range(4)]

    def test_invalid_permutation_rejected(self):
        net = BenesNetwork(4)
        with pytest.raises(ValueError):
            net.route([0, 0, 1, 2])

    def test_route_reports_traversals(self):
        route = BenesNetwork(8).route(list(reversed(range(8))))
        assert route.switch_traversals > 0


@given(data=st.data(), exponent=st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_any_permutation_is_rearrangeable(data, exponent):
    """A Benes network realises every permutation (rearrangeable non-blocking)."""
    size = 2**exponent
    perm = data.draw(st.permutations(list(range(size))))
    net = BenesNetwork(size)
    values = [f"value-{i}" for i in range(size)]
    assert net.apply(list(perm), values) == [values[perm[i]] for i in range(size)]

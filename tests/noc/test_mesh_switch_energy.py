"""Tests for the 1D mesh, switching nodes and the NoC energy model."""

import pytest

from repro.noc.energy import NoCEnergyModel
from repro.noc.hierarchical import HMFNoC, HMNoC
from repro.noc.mesh import Mesh1D
from repro.noc.switch import Switch2x2, Switch3x3, SwitchPort


class TestMesh1D:
    def test_unicast_delivery(self):
        mesh = Mesh1D(4)
        delivery = mesh.route(["a", "b", None, "d"])
        assert delivery.deliveries == {0: "a", 1: "b", 3: "d"}
        assert delivery.buffer_reads == 3
        # hops: node0 -> 1 link, node1 -> 2, node3 -> 4
        assert delivery.link_traversals == 1 + 2 + 4

    def test_oversized_assignment(self):
        with pytest.raises(ValueError):
            Mesh1D(2).route(["a", "b", "c"])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Mesh1D(0)


class TestSwitches:
    def test_2x2_forwarding(self):
        switch = Switch2x2()
        switch.configure({0: SwitchPort.SRC0, 1: SwitchPort.SRC1})
        out = switch.forward({SwitchPort.SRC0: "a", SwitchPort.SRC1: "b"})
        assert out == {0: "a", 1: "b"}
        assert switch.activations == 1

    def test_2x2_rejects_feedback(self):
        with pytest.raises(ValueError):
            Switch2x2().configure({0: SwitchPort.FEEDBACK})

    def test_3x3_accepts_feedback(self):
        switch = Switch3x3()
        switch.configure({2: SwitchPort.FEEDBACK})
        out = switch.forward({SwitchPort.FEEDBACK: "loop"})
        assert out == {2: "loop"}

    def test_invalid_output_index(self):
        with pytest.raises(ValueError):
            Switch2x2().configure({5: SwitchPort.SRC0})


class TestEnergyModel:
    def _alternating_sequences(self, noc):
        results = []
        patterns = [
            ["A"] * 16,
            ["A"] * 8 + ["B"] * 8,
            ["B"] * 12 + ["C"] * 4,
            ["C"] * 16,
        ]
        for pattern in patterns:
            results.append(noc.route(pattern))
        return results

    def test_hmf_buffer_energy_lower_than_hm(self):
        """The feedback path cuts on-chip memory access energy (paper: ~2.5x)."""
        model = NoCEnergyModel()
        hm_results = self._alternating_sequences(HMNoC(16))
        hmf_results = self._alternating_sequences(HMFNoC(16))
        ratio = model.memory_access_energy_ratio(hm_results, hmf_results)
        assert ratio > 1.5

    def test_route_energy_components_positive(self):
        model = NoCEnergyModel()
        result = HMFNoC(8).route(["a"] * 8)
        energy = model.route_energy(result)
        assert energy.buffer_read_j > 0
        assert energy.switch_j > 0
        assert energy.total_j == pytest.approx(
            energy.buffer_read_j + energy.switch_j + energy.feedback_j
        )

    def test_sequence_energy_accumulates(self):
        model = NoCEnergyModel()
        noc = HMNoC(8)
        single = model.route_energy(noc.route(["a"] * 8))
        noc.reset()
        double = model.sequence_energy([noc.route(["a"] * 8), noc.route(["b"] * 8)])
        assert double.total_j == pytest.approx(2 * single.total_j, rel=0.2)

    def test_zero_read_sequence_raises(self):
        model = NoCEnergyModel()
        with pytest.raises(ZeroDivisionError):
            model.memory_access_energy_ratio([], [])

"""Tests for the HM-NoC / HMF-NoC distribution trees."""

import pytest

from repro.noc.dataflow import DataflowMode
from repro.noc.hierarchical import HMFNoC, HMNoC


class TestStructure:
    def test_switch_counts(self):
        noc = HMNoC(16)
        assert noc.levels == 4
        assert noc.num_switches == 1 + 2 + 4 + 8

    def test_hmf_uses_3x3_switches(self):
        noc = HMFNoC(8)
        assert noc.switches[0][0].num_inputs == 3
        assert noc.has_feedback

    def test_hm_uses_2x2_switches(self):
        noc = HMNoC(8)
        assert noc.switches[0][0].num_inputs == 2
        assert not noc.has_feedback

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            HMNoC(0)
        with pytest.raises(ValueError):
            HMNoC(4, fanout=1)


class TestRouting:
    def test_broadcast_needs_one_buffer_read(self):
        for noc in (HMNoC(16), HMFNoC(16)):
            result = noc.route(["X"] * 16)
            assert result.mode is DataflowMode.BROADCAST
            assert result.buffer_reads == 1

    def test_unicast_reads_every_value(self):
        noc = HMNoC(8)
        result = noc.route(list("abcdefgh"))
        assert result.mode is DataflowMode.UNICAST
        assert result.buffer_reads == 8

    def test_multicast_reads_each_distinct_value_once(self):
        noc = HMNoC(8)
        result = noc.route(["a", "a", "a", "a", "b", "b", "b", "b"])
        assert result.mode is DataflowMode.MULTICAST
        assert result.buffer_reads == 2

    def test_broadcast_shares_switch_paths(self):
        noc = HMNoC(16)
        broadcast = noc.route(["X"] * 16)
        noc.reset()
        unicast = noc.route([f"v{i}" for i in range(16)])
        assert broadcast.switch_traversals < unicast.switch_traversals

    def test_oversized_assignment_rejected(self):
        with pytest.raises(ValueError):
            HMNoC(4).route(["a"] * 5)

    def test_deliveries_skip_none(self):
        result = HMNoC(4).route(["a", None, "b", None])
        assert result.deliveries == {0: "a", 2: "b"}


class TestFeedbackReuse:
    def test_resident_values_are_not_refetched(self):
        noc = HMFNoC(8)
        noc.route(["A"] * 8)
        result = noc.route(["A"] * 4 + ["B"] * 4)
        assert result.buffer_reads == 1          # only 'B' is new
        assert result.feedback_forwards == 4     # 'A' forwarded in-array

    def test_hm_noc_always_refetches(self):
        noc = HMNoC(8)
        noc.route(["A"] * 8)
        result = noc.route(["A"] * 4 + ["B"] * 4)
        assert result.buffer_reads == 2
        assert result.feedback_forwards == 0

    def test_reset_clears_residency(self):
        noc = HMFNoC(8)
        noc.route(["A"] * 8)
        noc.reset()
        result = noc.route(["A"] * 8)
        assert result.buffer_reads == 1
        assert result.feedback_forwards == 0

    def test_hmf_reads_never_exceed_hm(self):
        hm, hmf = HMNoC(16), HMFNoC(16)
        sequences = [
            ["A"] * 16,
            ["A"] * 8 + ["B"] * 8,
            [f"v{i % 4}" for i in range(16)],
            ["B"] * 16,
        ]
        hm_reads = sum(hm.route(seq).buffer_reads for seq in sequences)
        hmf_reads = sum(hmf.route(seq).buffer_reads for seq in sequences)
        assert hmf_reads <= hm_reads

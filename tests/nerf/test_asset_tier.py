"""The result store's asset tier makes repeat hash-grid fits zero-cost.

``InstantNGPRenderer.fit_to_scene(scene, store=...)`` writes the fitted
tables into a content-addressed asset entry keyed on (scene fingerprint,
grid-config fingerprint, store schema).  A warm fit must be a pure JSON
load: bit-identical tables, and *zero* queries of the scene fields.
"""

import numpy as np
import pytest

from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.renderer import InstantNGPRenderer
from repro.nerf.scenes import get_scene
from repro.perf.store import GridAssetKey, ResultStore

CONFIG = HashGridConfig(
    num_levels=4,
    features_per_level=4,
    log2_table_size=10,
    base_resolution=4,
    max_resolution=16,
)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestGridAssetKey:
    def test_digest_is_deterministic(self):
        a = GridAssetKey(scene_fingerprint="s", grid_fingerprint="g")
        b = GridAssetKey(scene_fingerprint="s", grid_fingerprint="g")
        assert a.digest == b.digest

    def test_digest_distinguishes_scene_and_grid(self):
        base = GridAssetKey(scene_fingerprint="s", grid_fingerprint="g")
        assert base.digest != GridAssetKey("s2", "g").digest
        assert base.digest != GridAssetKey("s", "g2").digest

    def test_round_trip(self, store):
        key = GridAssetKey(scene_fingerprint="s", grid_fingerprint="g")
        assert store.get_asset(key) is None
        store.put_asset(key, {"tables": [[1.0, 2.0]]})
        assert store.get_asset(key) == {"tables": [[1.0, 2.0]]}


class TestWarmFit:
    def test_cold_fit_populates_the_asset_tier(self, store):
        scene = get_scene("mic")
        renderer = InstantNGPRenderer(CONFIG)
        renderer.fit_to_scene(scene, store=store)
        payload = store.get_asset(renderer.asset_key(scene))
        assert payload is not None
        assert len(payload["tables"]) == CONFIG.num_levels

    def test_warm_fit_is_bit_identical(self, store):
        scene = get_scene("mic")
        cold = InstantNGPRenderer(CONFIG)
        cold.fit_to_scene(scene, store=store)
        warm = InstantNGPRenderer(CONFIG)
        warm.fit_to_scene(scene, store=store)
        for cold_table, warm_table in zip(cold.grid.tables, warm.grid.tables):
            np.testing.assert_array_equal(cold_table, warm_table)

    def test_warm_fit_never_queries_the_scene(self, store, monkeypatch):
        scene = get_scene("mic")
        InstantNGPRenderer(CONFIG).fit_to_scene(scene, store=store)

        def bomb(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm fit queried the scene fields")

        monkeypatch.setattr(type(scene), "fields", bomb)
        warm = InstantNGPRenderer(CONFIG)
        warm.fit_to_scene(scene, store=store)
        assert warm.scene is scene

    def test_different_grid_config_misses(self, store):
        scene = get_scene("mic")
        InstantNGPRenderer(CONFIG).fit_to_scene(scene, store=store)
        other_config = HashGridConfig(
            num_levels=4,
            features_per_level=4,
            log2_table_size=11,
            base_resolution=4,
            max_resolution=16,
        )
        other = InstantNGPRenderer(other_config)
        assert store.get_asset(other.asset_key(scene)) is None

    def test_different_scene_misses(self, store):
        InstantNGPRenderer(CONFIG).fit_to_scene(get_scene("mic"), store=store)
        probe = InstantNGPRenderer(CONFIG)
        assert store.get_asset(probe.asset_key(get_scene("lego"))) is None

    def test_storeless_fit_still_works(self):
        renderer = InstantNGPRenderer(CONFIG)
        renderer.fit_to_scene(get_scene("mic"))
        assert any(np.any(table) for table in renderer.grid.tables)

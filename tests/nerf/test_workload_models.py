"""Tests for workload descriptors and the seven per-model builders."""

import pytest

from repro.nerf.models import MODEL_REGISTRY, FrameConfig, all_models, get_model
from repro.nerf.workload import EncodingOp, GEMMOp, MiscOp, OpCategory, Workload
from repro.sparse.formats import Precision


class TestGEMMOp:
    def test_macs_and_flops(self):
        op = GEMMOp("x", m=10, n=20, k=30)
        assert op.macs == 6000
        assert op.flops == 12000

    def test_effective_macs_with_sparsity(self):
        op = GEMMOp("x", m=10, n=10, k=10, weight_sparsity=0.5, activation_sparsity=0.5)
        assert op.effective_macs == pytest.approx(250)

    def test_pruning_compounds_with_existing_sparsity(self):
        op = GEMMOp("x", m=4, n=4, k=4, weight_sparsity=0.5)
        pruned = op.pruned(0.5)
        assert pruned.weight_sparsity == pytest.approx(0.75)

    def test_precision_change_preserves_other_fields(self):
        op = GEMMOp("x", m=4, n=4, k=4, activation_sparsity=0.3)
        changed = op.with_precision(Precision.INT4)
        assert changed.precision is Precision.INT4
        assert changed.activation_sparsity == 0.3

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GEMMOp("x", m=0, n=1, k=1)
        with pytest.raises(ValueError):
            GEMMOp("x", m=1, n=1, k=1, weight_sparsity=1.0)


class TestEncodingAndMiscOps:
    def test_positional_flops_scale_with_output(self):
        small = EncodingOp("p", "positional", num_points=100, input_dim=3, output_dim=30)
        large = EncodingOp("p", "positional", num_points=100, input_dim=3, output_dim=60)
        assert large.flops == 2 * small.flops

    def test_hash_dram_bytes_capped_by_lookups(self):
        op = EncodingOp(
            "h", "hash", num_points=10, input_dim=3, output_dim=32,
            table_lookups_per_point=8, table_bytes=1e9, table_passes=2,
        )
        assert op.dram_bytes == 10 * 8 * 4.0

    def test_positional_has_no_dram_traffic(self):
        op = EncodingOp("p", "positional", num_points=10, input_dim=3, output_dim=30)
        assert op.dram_bytes == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EncodingOp("x", "fourier", num_points=1, input_dim=1, output_dim=1)

    def test_misc_validation(self):
        with pytest.raises(ValueError):
            MiscOp("m", flops=-1, memory_bytes=0)


class TestWorkload:
    def _workload(self):
        return Workload(
            model_name="test",
            ops=[
                GEMMOp("g", m=100, n=64, k=32),
                EncodingOp("e", "positional", num_points=100, input_dim=3, output_dim=60),
                MiscOp("m", flops=1000, memory_bytes=100),
            ],
        )

    def test_category_totals(self):
        workload = self._workload()
        by_category = workload.flops_by_category()
        assert by_category[OpCategory.GEMM] == 2 * 100 * 64 * 32
        assert by_category[OpCategory.OTHER] == 1000
        assert workload.total_flops == sum(by_category.values())

    def test_pruning_only_affects_gemms(self):
        pruned = self._workload().pruned(0.5)
        assert pruned.gemm_ops()[0].weight_sparsity == 0.5
        assert len(pruned.encoding_ops()) == 1

    def test_precision_change(self):
        converted = self._workload().with_precision(Precision.INT4)
        assert all(op.precision is Precision.INT4 for op in converted.gemm_ops())

    def test_num_batches(self):
        workload = self._workload()
        assert workload.num_rays == 800 * 800
        assert workload.num_batches == -(-800 * 800 // 4096)


class TestModelDescriptors:
    def test_registry_has_seven_models(self):
        assert len(MODEL_REGISTRY) == 7

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_every_model_builds_a_workload(self, name):
        workload = get_model(name).build_workload(FrameConfig())
        assert workload.total_flops > 0
        assert len(workload.gemm_ops()) >= 1
        assert len(workload.encoding_ops()) >= 1
        assert len(workload.misc_ops()) >= 1

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gaussian-splatting")

    def test_vanilla_nerf_is_heaviest_positional_model(self):
        config = FrameConfig()
        flops = {m.name: m.build_workload(config).total_flops for m in all_models()}
        assert flops["nerf"] > flops["instant-ngp"]
        assert flops["nerf"] > flops["kilonerf"]

    def test_instant_ngp_skips_empty_space(self):
        config = FrameConfig()
        model = get_model("instant-ngp")
        assert model.uses_empty_space_skipping
        assert model.input_sparsity(config) == pytest.approx(
            config.scene.ray_marching_sparsity
        )

    def test_skipping_models_sample_fewer_points_on_sparser_scenes(self):
        model = get_model("kilonerf")
        lego = model.samples_per_ray(FrameConfig(scene_name="lego"))
        mic = model.samples_per_ray(FrameConfig(scene_name="mic"))
        assert mic < lego

    def test_batch_size_propagates(self):
        workload = get_model("nerf").build_workload(FrameConfig(batch_size=2048))
        assert workload.batch_size == 2048

    def test_hash_models_have_table_traffic(self):
        workload = get_model("instant-ngp").build_workload(FrameConfig())
        hash_ops = [op for op in workload.encoding_ops() if op.kind == "hash"]
        assert hash_ops and all(op.table_bytes > 0 for op in hash_ops)

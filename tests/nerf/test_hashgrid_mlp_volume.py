"""Tests for the hash grid, the MLP and volume rendering."""

import numpy as np
import pytest

from repro.nerf.hashgrid import HashGrid, HashGridConfig
from repro.nerf.mlp import MLP, LinearLayer, relu
from repro.nerf.volume import composite_rays, expected_depth, transmittance_weights


class TestHashGrid:
    def _small_grid(self):
        return HashGrid(
            HashGridConfig(
                num_levels=4,
                features_per_level=2,
                log2_table_size=10,
                base_resolution=4,
                max_resolution=32,
            )
        )

    def test_output_shape(self, rng):
        grid = self._small_grid()
        points = rng.random((100, 3))
        features = grid.encode(points)
        assert features.shape == (100, grid.output_dim)

    def test_resolutions_grow_geometrically(self):
        grid = self._small_grid()
        resolutions = [grid.config.resolution(level) for level in range(4)]
        assert resolutions[0] == 4
        assert resolutions[-1] == 32
        assert all(b >= a for a, b in zip(resolutions, resolutions[1:]))

    def test_fine_levels_use_hashing(self):
        config = HashGridConfig(num_levels=8, log2_table_size=10, base_resolution=4, max_resolution=128)
        grid = HashGrid(config)
        grid.encode(np.random.default_rng(0).random((10, 3)))
        uses_hash = [stat.uses_hash for stat in grid.last_level_stats]
        assert not uses_hash[0]       # coarse level is dense
        assert uses_hash[-1]          # finest level exceeds the table size

    def test_interpolation_is_continuous(self, rng):
        """Nearby points produce nearby features (trilinear interpolation)."""
        grid = self._small_grid()
        point = np.array([[0.5, 0.5, 0.5]])
        nearby = point + 1e-4
        delta = np.abs(grid.encode(point) - grid.encode(nearby))
        assert delta.max() < 1e-2

    def test_coalescing_statistics(self, rng):
        grid = self._small_grid()
        grid.encode(rng.random((500, 3)))
        coarse = grid.last_level_stats[0]
        assert coarse.num_lookups == 500 * 8
        assert coarse.unique_indices <= (grid.config.resolution(0) + 1) ** 3
        assert coarse.coalescing_factor > 1.0

    def test_rejects_bad_points(self):
        with pytest.raises(ValueError):
            self._small_grid().encode(np.zeros((5, 2)))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HashGridConfig(num_levels=0)
        with pytest.raises(ValueError):
            HashGridConfig(base_resolution=64, max_resolution=16)


class TestMLP:
    def test_forward_shapes(self, rng):
        mlp = MLP.build([8, 16, 4], rng=rng)
        assert mlp.forward(rng.normal(size=(10, 8))).shape == (10, 4)

    def test_relu(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_gemm_shapes(self, rng):
        mlp = MLP.build([8, 16, 4], rng=rng)
        assert mlp.gemm_shapes(100) == [(100, 16, 8), (100, 4, 16)]

    def test_num_parameters(self, rng):
        mlp = MLP.build([8, 16, 4], rng=rng)
        assert mlp.num_parameters() == 8 * 16 + 16 + 16 * 4 + 4

    def test_structured_pruning_zeroes_columns(self, rng):
        layer = LinearLayer.random(32, 64, rng=rng)
        layer.prune(0.5)
        assert layer.weight_sparsity() == pytest.approx(0.5)
        zero_cols = np.all(layer.weight == 0, axis=0)
        assert zero_cols.sum() == 32

    def test_prune_rejects_invalid_ratio(self, rng):
        with pytest.raises(ValueError):
            LinearLayer.random(4, 4, rng=rng).prune(1.0)

    def test_invalid_layer_shapes(self):
        with pytest.raises(ValueError):
            LinearLayer(weight=np.zeros((4, 4)), bias=np.zeros(3))
        with pytest.raises(ValueError):
            MLP.build([8])

    def test_sigmoid_output_bounded(self, rng):
        mlp = MLP.build([4, 8, 2], final_activation="sigmoid", rng=rng)
        out = mlp.forward(rng.normal(size=(20, 4)) * 10)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestVolumeRendering:
    def test_weights_sum_below_one(self, rng):
        densities = rng.uniform(0, 5, size=(10, 16))
        deltas = np.full((10, 16), 0.1)
        weights = transmittance_weights(densities, deltas)
        assert np.all(weights >= 0)
        assert np.all(weights.sum(axis=-1) <= 1.0 + 1e-9)

    def test_empty_space_gives_white_background(self):
        colors = np.zeros((5, 8, 3))
        densities = np.zeros((5, 8))
        t_values = np.tile(np.linspace(2, 6, 8), (5, 1))
        image = composite_rays(colors, densities, t_values, white_background=True)
        np.testing.assert_allclose(image, 1.0)

    def test_opaque_first_sample_dominates(self):
        colors = np.zeros((1, 4, 3))
        colors[0, 0] = [1.0, 0.0, 0.0]
        densities = np.array([[1000.0, 0.0, 0.0, 0.0]])
        t_values = np.array([[2.0, 3.0, 4.0, 5.0]])
        image = composite_rays(colors, densities, t_values)
        np.testing.assert_allclose(image[0], [1.0, 0.0, 0.0], atol=1e-6)

    def test_output_clipped_to_unit_range(self, rng):
        colors = rng.uniform(0, 2, size=(4, 8, 3))
        densities = rng.uniform(0, 10, size=(4, 8))
        t_values = np.tile(np.linspace(2, 6, 8), (4, 1))
        image = composite_rays(colors, densities, t_values)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_expected_depth_matches_opaque_surface(self):
        densities = np.array([[0.0, 1000.0, 0.0]])
        t_values = np.array([[2.0, 4.0, 6.0]])
        depth = expected_depth(densities, t_values)
        assert depth[0] == pytest.approx(4.0, abs=1e-3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            transmittance_weights(np.zeros((2, 3)), np.zeros((2, 4)))

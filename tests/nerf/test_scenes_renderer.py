"""Tests for the synthetic scenes and the functional renderers."""

import numpy as np
import pytest

from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.rays import Camera
from repro.nerf.renderer import InstantNGPRenderer, VanillaNeRFRenderer, render_reference
from repro.nerf.scenes import SCENE_LIBRARY, SyntheticScene, get_scene
from repro.quant.metrics import psnr
from repro.sparse.formats import Precision

SMALL_CAMERA = Camera(width=24, height=24, focal=28.0)
SMALL_GRID = HashGridConfig(
    num_levels=4, features_per_level=4, log2_table_size=12,
    base_resolution=8, max_resolution=32,
)


class TestScenes:
    def test_library_contains_paper_scenes(self):
        for name in ("lego", "mic", "palace"):
            assert name in SCENE_LIBRARY

    def test_measured_occupancy_tracks_target(self):
        for name in ("lego", "mic"):
            scene = get_scene(name)
            measured = scene.measured_occupancy(num_samples=30000)
            assert measured == pytest.approx(scene.target_occupancy, abs=0.12)

    def test_mic_sparser_than_lego(self):
        assert get_scene("mic").ray_marching_sparsity > get_scene("lego").ray_marching_sparsity

    def test_palace_more_complex_than_mic(self):
        assert get_scene("palace").effective_samples_scale > get_scene("mic").effective_samples_scale

    def test_density_and_color_shapes(self, rng):
        scene = get_scene("lego")
        points = rng.uniform(-1, 1, size=(50, 3))
        assert scene.density(points).shape == (50,)
        assert scene.color(points).shape == (50, 3)
        assert scene.density(points).min() >= 0.0

    def test_unknown_scene(self):
        with pytest.raises(KeyError):
            get_scene("millennium-falcon")

    def test_invalid_scene_parameters(self):
        with pytest.raises(ValueError):
            SyntheticScene(name="bad", complexity=1.0, target_occupancy=0.0, num_primitives=4)
        with pytest.raises(ValueError):
            SyntheticScene(name="bad", complexity=1.0, target_occupancy=0.5, num_primitives=0)


class TestReferenceRender:
    def test_reference_image_shape_and_range(self):
        image = render_reference(get_scene("mic"), SMALL_CAMERA, num_samples=24)
        assert image.shape == (24, 24, 3)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_scene_content_visible(self):
        """The rendered scene is not a uniform background."""
        image = render_reference(get_scene("lego"), SMALL_CAMERA, num_samples=24)
        assert image.std() > 0.01


class TestVanillaRenderer:
    def test_render_shape(self):
        renderer = VanillaNeRFRenderer(hidden_width=32, num_hidden_layers=2)
        image = renderer.render(SMALL_CAMERA, num_samples=8)
        assert image.shape == (24, 24, 3)
        assert renderer.stats.num_samples == 24 * 24 * 8

    def test_query_shapes(self, rng):
        renderer = VanillaNeRFRenderer(hidden_width=32, num_hidden_layers=2)
        densities, colors = renderer.query(rng.random((10, 3)), rng.random((10, 3)))
        assert densities.shape == (10,)
        assert colors.shape == (10, 3)


class TestInstantNGPRenderer:
    def _fitted(self, scene_name="lego"):
        renderer = InstantNGPRenderer(SMALL_GRID)
        renderer.fit_to_scene(get_scene(scene_name))
        return renderer

    def test_requires_fitting(self):
        with pytest.raises(RuntimeError):
            InstantNGPRenderer(SMALL_GRID).render(SMALL_CAMERA)

    def test_fitted_render_approximates_reference(self):
        renderer = self._fitted()
        image = renderer.render(SMALL_CAMERA, num_samples=24)
        reference = render_reference(get_scene("lego"), SMALL_CAMERA, num_samples=24)
        assert psnr(reference, image) > 12.0

    def test_stage_sparsity_recorded(self):
        renderer = self._fitted()
        renderer.render(SMALL_CAMERA, num_samples=16)
        stages = renderer.stats.stage_sparsity
        assert set(stages) == {"input_ray_marching", "output_relu1", "output"}
        assert stages["input_ray_marching"] > 0.5
        assert stages["output_relu1"] < 0.2

    def test_sparser_scene_has_sparser_input(self):
        lego = self._fitted("lego")
        mic = self._fitted("mic")
        lego.render(SMALL_CAMERA, num_samples=16)
        mic.render(SMALL_CAMERA, num_samples=16)
        assert (
            mic.stats.stage_sparsity["input_ray_marching"]
            > lego.stats.stage_sparsity["input_ray_marching"]
        )

    def test_int16_quantization_nearly_lossless(self):
        renderer = self._fitted()
        fp32 = renderer.render(SMALL_CAMERA, num_samples=16, record_stats=False)
        int16 = renderer.render(
            SMALL_CAMERA, num_samples=16, precision=Precision.INT16, record_stats=False
        )
        assert psnr(fp32, int16) > 40.0

    def test_lower_precision_degrades_quality(self):
        renderer = self._fitted()
        fp32 = renderer.render(SMALL_CAMERA, num_samples=16, record_stats=False)
        int8 = renderer.render(SMALL_CAMERA, num_samples=16, precision=Precision.INT8, record_stats=False)
        int4 = renderer.render(SMALL_CAMERA, num_samples=16, precision=Precision.INT4, record_stats=False)
        assert psnr(fp32, int8) >= psnr(fp32, int4)

    def test_prepared_render_matches_direct_render(self):
        renderer = self._fitted()
        direct = renderer.render(SMALL_CAMERA, num_samples=16, record_stats=False)
        plan = renderer.prepare_render(SMALL_CAMERA, num_samples=16)
        np.testing.assert_array_equal(
            renderer.render_prepared(plan, record_stats=False), direct
        )
        # A plan is reusable: per-precision renders off one plan equal the
        # per-precision direct renders.
        direct_int8 = renderer.render(
            SMALL_CAMERA, num_samples=16, precision=Precision.INT8, record_stats=False
        )
        np.testing.assert_array_equal(
            renderer.render_prepared(
                plan, precision=Precision.INT8, record_stats=False
            ),
            direct_int8,
        )

    def test_plan_features_not_mutated_by_quantized_render(self):
        renderer = self._fitted()
        plan = renderer.prepare_render(SMALL_CAMERA, num_samples=16)
        before = plan.features.copy()
        renderer.render_prepared(plan, precision=Precision.INT4, record_stats=False)
        np.testing.assert_array_equal(plan.features, before)

    def test_stats_pass_runs_single_mlp_forward(self, monkeypatch):
        # The stage-sparsity probe reuses the first layer's activations for
        # the rest of the forward pass instead of re-running the whole MLP.
        renderer = self._fitted()
        first_layer = renderer.mlp.layers[0]
        calls = {"n": 0}
        original = type(first_layer).forward

        def counting(self, x):
            if self is first_layer:
                calls["n"] += 1
            return original(self, x)

        monkeypatch.setattr(type(first_layer), "forward", counting)
        renderer.render(SMALL_CAMERA, num_samples=16, record_stats=True)
        assert calls["n"] == 1


class TestMLPForwardStart:
    def test_start_resumes_mid_network(self):
        from repro.nerf.mlp import MLP

        rng = np.random.default_rng(0)
        mlp = MLP.build([8, 16, 16, 4], rng=np.random.default_rng(3))
        x = rng.normal(size=(10, 8))
        full = mlp.forward(x)
        hidden1 = mlp.layers[0].forward(x)
        np.testing.assert_array_equal(mlp.forward(hidden1, start=1), full)

"""Tests for ray generation, sampling and positional encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nerf.positional import (
    approx_cos_halfpi,
    approx_positional_encoding,
    approx_sin_halfpi,
    encoding_output_dim,
    positional_encoding,
)
from repro.nerf.rays import Camera, generate_rays, sample_along_rays, view_angles


class TestCameraAndRays:
    def test_ray_count_and_normalisation(self):
        camera = Camera(width=8, height=6, focal=10.0)
        origins, directions = generate_rays(camera)
        assert origins.shape == (48, 3)
        assert directions.shape == (48, 3)
        np.testing.assert_allclose(np.linalg.norm(directions, axis=-1), 1.0)

    def test_invalid_camera(self):
        with pytest.raises(ValueError):
            Camera(width=0, height=4, focal=1.0)
        with pytest.raises(ValueError):
            Camera(width=4, height=4, focal=-1.0)

    def test_sampling_within_bounds(self, rng):
        camera = Camera(width=4, height=4, focal=5.0)
        origins, directions = generate_rays(camera)
        points, t_values = sample_along_rays(origins, directions, 16, near=2.0, far=6.0, rng=rng)
        assert points.shape == (16, 16, 3)
        assert t_values.min() >= 2.0
        assert t_values.max() <= 6.0

    def test_t_values_monotonic(self, rng):
        origins = np.zeros((3, 3))
        directions = np.tile([0.0, 0.0, -1.0], (3, 1))
        _, t_values = sample_along_rays(origins, directions, 32, rng=rng)
        assert np.all(np.diff(t_values, axis=-1) > 0)

    def test_deterministic_midpoints_without_stratification(self):
        origins = np.zeros((1, 3))
        directions = np.array([[0.0, 0.0, -1.0]])
        _, t_values = sample_along_rays(origins, directions, 4, near=0.0, far=4.0, stratified=False)
        np.testing.assert_allclose(t_values[0], [0.5, 1.5, 2.5, 3.5])

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            sample_along_rays(np.zeros((2, 3)), np.zeros((3, 3)), 4, rng=rng)
        with pytest.raises(ValueError):
            sample_along_rays(np.zeros((2, 3)), np.zeros((2, 3)), 0, rng=rng)
        with pytest.raises(ValueError):
            sample_along_rays(np.zeros((2, 3)), np.zeros((2, 3)), 4, near=5, far=2, rng=rng)

    def test_view_angles_range(self, rng):
        directions = rng.normal(size=(100, 3))
        directions /= np.linalg.norm(directions, axis=-1, keepdims=True)
        angles = view_angles(directions)
        assert np.all(angles[:, 1] >= 0) and np.all(angles[:, 1] <= np.pi)


class TestPositionalEncoding:
    def test_output_dim(self):
        values = np.zeros((10, 3))
        encoded = positional_encoding(values, 10)
        assert encoded.shape == (10, 60)
        assert encoding_output_dim(3, 10) == 60
        assert encoding_output_dim(3, 10, include_input=True) == 63

    def test_include_input(self):
        values = np.ones((5, 2))
        encoded = positional_encoding(values, 4, include_input=True)
        np.testing.assert_array_equal(encoded[:, :2], values)

    def test_values_bounded(self, rng):
        encoded = positional_encoding(rng.normal(size=(50, 3)), 8)
        assert np.all(np.abs(encoded) <= 1.0 + 1e-12)

    def test_first_band_matches_eq1(self):
        values = np.array([[0.25]])
        encoded = positional_encoding(values, 1)
        np.testing.assert_allclose(
            encoded[0], [np.sin(np.pi * 0.25), np.cos(np.pi * 0.25)]
        )

    def test_rejects_zero_frequencies(self):
        with pytest.raises(ValueError):
            positional_encoding(np.zeros((1, 3)), 0)


class TestHardwareApproximation:
    @pytest.mark.parametrize("value", [0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
    def test_exact_at_integer_points(self, value):
        """Eq. (5)-(6) are exact wherever sin/cos hit 0 or +/-1."""
        assert approx_sin_halfpi(value) == pytest.approx(np.sin(np.pi * value / 2), abs=1e-9)
        assert approx_cos_halfpi(value) == pytest.approx(np.cos(np.pi * value / 2), abs=1e-9)

    def test_bounded_error_between_grid_points(self):
        """Between integer points the parabolic approximation stays within ~7 %."""
        values = np.linspace(0.0, 4.0, 401)
        error = np.abs(approx_sin_halfpi(values) - np.sin(np.pi * values / 2))
        assert error.max() < 0.08

    def test_approximation_tracks_exact_shape(self, rng):
        values = rng.uniform(0, 4, size=1000)
        approx = approx_sin_halfpi(values)
        exact = np.sin(np.pi * values / 2)
        # piece-wise quadratic approximation: bounded error, matching sign
        assert np.max(np.abs(approx - exact)) < 0.3
        same_sign = np.sign(approx) == np.sign(exact)
        assert np.mean(same_sign | (np.abs(exact) < 1e-6)) > 0.99

    def test_approx_encoding_shape_matches_exact(self, rng):
        values = rng.uniform(0, 1, size=(20, 3))
        assert (
            approx_positional_encoding(values, 6).shape
            == positional_encoding(values, 6).shape
        )


@given(st.floats(-8.0, 8.0))
@settings(max_examples=100, deadline=None)
def test_approx_sin_bounded(value):
    """The approximated trig functions never exceed unit magnitude."""
    assert abs(approx_sin_halfpi(value)) <= 1.0 + 1e-9
    assert abs(approx_cos_halfpi(value)) <= 1.0 + 1e-9

"""The chunked-GEMM scene kernels agree with the reference broadcast path.

``SyntheticScene.density`` / ``color`` / ``occupancy`` and the fused
``fields`` scan compute squared distances via the expanded GEMM identity
``d^2 = |p|^2 + |c|^2 - 2 p.c`` instead of materialising the (N, P, 3)
difference cube.  The reassociated arithmetic may differ from the
reference ``np.linalg.norm`` path in the last few ulps of the *distance*,
so densities are compared within 1e-9; the derived nearest-primitive
colors and the occupancy mask must match exactly.
"""

import numpy as np
import pytest

from repro.nerf.scenes import SCENE_LIBRARY, get_scene

RNG = np.random.default_rng(20260808)


def sample_points(num: int) -> np.ndarray:
    return RNG.uniform(-1.6, 1.6, size=(num, 3))


@pytest.mark.parametrize("name", sorted(SCENE_LIBRARY))
class TestAllScenes:
    def test_density_matches_reference(self, name):
        scene = get_scene(name)
        points = sample_points(4096)
        np.testing.assert_allclose(
            scene.density(points),
            scene.reference_density(points),
            rtol=0.0,
            atol=1e-9,
        )

    def test_color_and_occupancy_match_exactly(self, name):
        scene = get_scene(name)
        points = sample_points(2048)
        np.testing.assert_array_equal(
            scene.color(points), scene.reference_color(points)
        )
        np.testing.assert_array_equal(
            scene.occupancy(points), scene.reference_occupancy(points)
        )

    def test_fused_fields_matches_single_field_calls(self, name):
        scene = get_scene(name)
        points = sample_points(2048)
        density, color, occupancy = scene.fields(points)
        np.testing.assert_array_equal(density, scene.density(points))
        np.testing.assert_array_equal(color, scene.color(points))
        np.testing.assert_array_equal(occupancy, scene.occupancy(points))


class TestShapesAndLayouts:
    def test_empty_batch(self):
        scene = get_scene("lego")
        points = np.empty((0, 3))
        density, color, occupancy = scene.fields(points)
        assert density.shape == (0,)
        assert color.shape == (0, 3)
        assert occupancy.shape == (0,)
        assert scene.density(points).shape == (0,)

    def test_single_point(self):
        scene = get_scene("mic")
        point = np.array([0.05, -0.2, 0.4])
        density, color, occupancy = scene.fields(point)
        assert density.shape == ()
        assert color.shape == (3,)
        assert occupancy.shape == ()
        assert density == scene.reference_density(point)

    def test_multi_dim_lead_shape(self):
        scene = get_scene("chair")
        points = sample_points(24).reshape(2, 3, 4, 3)
        density, color, occupancy = scene.fields(points)
        assert density.shape == (2, 3, 4)
        assert color.shape == (2, 3, 4, 3)
        assert occupancy.shape == (2, 3, 4)
        np.testing.assert_allclose(
            density, scene.reference_density(points), rtol=0.0, atol=1e-9
        )
        np.testing.assert_array_equal(color, scene.reference_color(points))

    def test_non_contiguous_input(self):
        scene = get_scene("drums")
        wide = sample_points(512 * 2).reshape(512, 6)
        points = wide[:, ::2]  # stride-2 view: not C-contiguous
        assert not points.flags["C_CONTIGUOUS"]
        np.testing.assert_allclose(
            scene.density(points),
            scene.reference_density(np.ascontiguousarray(points)),
            rtol=0.0,
            atol=1e-9,
        )

    def test_chunked_scan_crosses_chunk_boundaries(self, monkeypatch):
        # Force a tiny chunk so one call spans many GEMM blocks.
        import repro.nerf.scenes as scenes_mod

        scene = get_scene("palace")
        points = sample_points(1000)
        expected = scene.density(points)
        monkeypatch.setattr(scenes_mod, "_CHUNK_BUDGET", 1)
        # Different BLAS block shapes may flip the last few ulps.
        np.testing.assert_allclose(
            scene.density(points), expected, rtol=0.0, atol=1e-9
        )


class TestFingerprint:
    def test_stable_and_distinct(self):
        lego = get_scene("lego")
        assert lego.fingerprint() == get_scene("lego").fingerprint()
        assert lego.fingerprint() != get_scene("mic").fingerprint()

"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import Precision, SweepEngine, SweepSpec
from repro.core.compression import SparsityAwareCompressor
from repro.core.mac_array import MACArray
from repro.experiments._stats import geomean
from repro.nerf.models import MODEL_REGISTRY, FrameConfig
from repro.nerf.rays import Camera
from repro.nerf.renderer import InstantNGPRenderer, render_reference
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.scenes import get_scene
from repro.quant.metrics import psnr
from repro.sim.sweep import index_rows
from repro.sparse.tensor import random_sparse_matrix


class TestFullComparisonPipeline:
    """Workload -> GPU / NeuRex / FlexNeRFer comparison, as in Section 6.3."""

    @pytest.fixture(scope="class")
    def reports(self):
        engine = SweepEngine()
        rows = engine.run(
            SweepSpec(
                devices=("rtx-2080-ti", "neurex", "flexnerfer"),
                models=tuple(MODEL_REGISTRY),
                base_config=FrameConfig(),
            )
        )
        by_point = index_rows(rows, "device", "model")
        return {
            model: (
                by_point[("RTX 2080 Ti", model)].report,
                by_point[("NeuRex", model)].report,
                by_point[("FlexNeRFer", model)].report,
            )
            for model in MODEL_REGISTRY
        }

    def test_flexnerfer_is_fastest_on_every_model(self, reports):
        for name, (gpu_report, neurex_report, flex_report) in reports.items():
            assert flex_report.latency_s < gpu_report.latency_s, name
            assert flex_report.latency_s < neurex_report.latency_s, name

    def test_flexnerfer_is_most_energy_efficient(self, reports):
        for name, (gpu_report, _, flex_report) in reports.items():
            assert flex_report.energy_j < gpu_report.energy_j, name

    def test_headline_speedup_range(self, reports):
        """INT16, unpruned speedups land in the right order of magnitude."""
        speedups = [
            gpu.latency_s / flex.latency_s for gpu, _, flex in reports.values()
        ]
        assert 3.0 < geomean(speedups) < 40.0


class TestComputePathConsistency:
    def test_mac_array_gemm_matches_numpy_through_compression(self, rng):
        """Compress -> decompress -> dense-map -> reduce equals plain matmul."""
        compressor = SparsityAwareCompressor(Precision.INT8)
        array = MACArray(rows=8, cols=8)
        activations = random_sparse_matrix((12, 16), 0.6, Precision.INT8, rng)
        weights = random_sparse_matrix((16, 10), 0.5, Precision.INT8, rng)
        restored = compressor.decompress(compressor.compress_input(activations).encoded)
        compressor.analyze_weights("w", weights)
        restored_w = compressor.decompress(compressor.compress_weights("w", weights).encoded)
        result = array.gemm(restored, restored_w, Precision.INT8)
        np.testing.assert_array_equal(result, activations @ weights)


class TestRenderingQualityPipeline:
    def test_quantized_render_quality_ordering(self):
        scene = get_scene("mic")
        camera = Camera(width=20, height=20, focal=24.0)
        renderer = InstantNGPRenderer(
            HashGridConfig(num_levels=4, features_per_level=4, log2_table_size=12,
                           base_resolution=8, max_resolution=32)
        )
        renderer.fit_to_scene(scene)
        reference = render_reference(scene, camera, num_samples=16)
        fp32 = renderer.render(camera, num_samples=16, record_stats=False)
        int4 = renderer.render(camera, num_samples=16, precision=Precision.INT4, record_stats=False)
        assert psnr(reference, fp32) >= psnr(reference, int4) - 1e-6

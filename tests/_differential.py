"""Shared differential-testing helpers: normalize-and-diff comparators.

Three suites pin "two ways of computing the same thing agree bit-exactly":
the serving fast path vs. the event loop (``tests/serve``), sharded
``repro shard`` + ``assemble`` replays vs. serial runs (``tests/perf``),
and sharded ``repro plan`` vs. serial planning (``tests/plan``).  The
comparison logic used to be duplicated per suite; it lives here once.

Not a test module (the leading underscore keeps pytest from collecting
it); import as ``from tests._differential import ...`` -- the repo root is
on ``pythonpath`` (see ``pyproject.toml``), so ``tests`` resolves as a
namespace package.
"""

import json

from repro.perf.distributed import normalize_result_json


def assert_fast_path_matches_event_loop(simulator, requests, context=""):
    """Assert the fast path and event loop produce identical reports.

    Runs ``simulator`` both ways (``run`` takes the numpy fast path for
    plain-FIFO fleets; ``_run_event_loop`` is the reference discrete-event
    implementation) and asserts the reports -- including the per-request
    completion log, rejection log and per-worker stats excluded from
    dataclass equality -- are bit-identical.  Returns the fast-path report
    for further assertions.
    """
    fast = simulator.run(requests)
    slow = simulator._run_event_loop(requests)
    assert fast == slow, context
    assert fast.completed == slow.completed, context
    assert fast.rejected == slow.rejected, context
    assert fast.workers == slow.workers, context
    return fast


def assert_text_matches_modulo_wall_time(reference, candidate, context=""):
    """Assert two JSON artifacts match byte-for-byte except wall-clock time.

    Both directions of the pin: the texts are identical once
    :func:`~repro.perf.distributed.normalize_result_json` masks the
    volatile ``wall_time_s`` provenance field, *and* the masking touches
    nothing else (parsing both documents and deleting every ``wall_time_s``
    leaves equal structures) -- so a regression cannot hide behind the
    normalizer widening.
    """
    assert normalize_result_json(reference) == normalize_result_json(
        candidate
    ), context
    assert _without_wall_time(json.loads(reference)) == _without_wall_time(
        json.loads(candidate)
    ), context


def _without_wall_time(document):
    """``document`` with every nested ``wall_time_s`` entry removed."""
    if isinstance(document, dict):
        return {
            key: _without_wall_time(value)
            for key, value in document.items()
            if key != "wall_time_s"
        }
    if isinstance(document, list):
        return [_without_wall_time(item) for item in document]
    return document


def assert_shard_union_matches_serial(serial_items, shard_item_lists, key=None):
    """Assert shard outputs partition the serial output exactly.

    ``serial_items`` is the full (serial) sequence; ``shard_item_lists``
    is one sequence per shard.  Asserts the shards are pairwise disjoint,
    collectively complete, and order-preserving restrictions of the serial
    sequence.  ``key`` maps an item to its identity (default: the item
    itself).
    """
    key = key or (lambda item: item)
    serial_keys = [key(item) for item in serial_items]
    assert len(set(serial_keys)) == len(serial_keys), "serial items not unique"
    seen = set()
    for index, items in enumerate(shard_item_lists):
        shard_keys = [key(item) for item in items]
        overlap = seen.intersection(shard_keys)
        assert not overlap, f"shard {index} repeats items of earlier shards: {overlap}"
        seen.update(shard_keys)
        # Each shard preserves the serial enumeration order of its subset.
        positions = [serial_keys.index(k) for k in shard_keys]
        assert positions == sorted(positions), f"shard {index} reorders items"
    assert seen == set(serial_keys), (
        f"shard union differs from serial: missing={set(serial_keys) - seen} "
        f"extra={seen - set(serial_keys)}"
    )

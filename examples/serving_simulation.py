"""Serving simulation walkthrough: streams, schedulers, fleet metrics.

Builds a scenario mix, generates a seeded Poisson request stream, serves it
on three fleet/policy combinations and prints the serving metrics each one
achieves -- the fleet-level view (p95 latency, goodput, energy per request)
behind the `serve-*` experiments.

Run with:  PYTHONPATH=src python examples/serving_simulation.py
"""

from __future__ import annotations

from repro.serve import (
    BatchDeadlineScheduler,
    FIFOScheduler,
    FleetSimulator,
    PoissonStream,
    Scenario,
    ScenarioMix,
    SparsityAwareScheduler,
)
from repro.sparse.formats import Precision


def describe(label: str, report) -> None:
    print(
        f"{label:<34} p50={report.p50_latency_s * 1e3:7.1f} ms  "
        f"p95={report.p95_latency_s * 1e3:7.1f} ms  "
        f"goodput={report.goodput_rps:5.1f} rps  "
        f"SLA={report.sla_attainment * 100:5.1f} %  "
        f"E/req={report.energy_per_request_j * 1e3:6.1f} mJ"
    )
    for worker in report.workers:
        print(
            f"    {worker.worker:<16} served={worker.requests_served:<4} "
            f"batches={worker.batches_served:<4} "
            f"utilization={worker.utilization * 100:5.1f} %"
        )


def main() -> None:
    # Built inline to show construction; mirrors the serve-* experiments'
    # repro.experiments._serving.REFERENCE_MIX.
    mix = ScenarioMix(
        scenarios=(
            Scenario("instant-ngp", scene="lego", width=400, height=400),
            Scenario(
                "instant-ngp",
                scene="mic",
                width=400,
                height=400,
                precision=Precision.INT8,
                pruning_ratio=0.5,
            ),
            Scenario("tensorf", scene="lego", width=400, height=400),
        ),
        weights=(2.0, 1.0, 1.0),
    )
    stream = PoissonStream(rate_rps=25.0, duration_s=30.0, mix=mix, sla_s=0.3)
    requests = stream.generate(seed=0)
    print(f"stream: {len(requests)} requests over 30 s, 300 ms SLA\n")

    solo = FleetSimulator(("flexnerfer",), scheduler=FIFOScheduler())
    describe("1x FlexNeRFer, FIFO", solo.run(requests))

    duo = FleetSimulator(
        ("flexnerfer", "neurex"), scheduler=SparsityAwareScheduler()
    )
    describe("FlexNeRFer + NeuRex, routed", duo.run(requests))

    batched = FleetSimulator(
        ("flexnerfer",),
        scheduler=BatchDeadlineScheduler(max_batch=8, max_wait_s=0.05),
    )
    describe("1x FlexNeRFer, batch<=8", batched.run(requests))


if __name__ == "__main__":
    main()

"""Quickstart: estimate FlexNeRFer's cost and per-model rendering performance.

Pulls the accelerator from the unified device registry, prints its area/power
(paper Fig. 16), then declares one sweep rendering every NeRF model on the
RTX 2080 Ti, NeuRex and FlexNeRFer at INT16 and compares latency and energy.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

from repro import Precision, SweepEngine, SweepSpec, get_device
from repro.nerf.models import MODEL_REGISTRY, FrameConfig
from repro.sim.sweep import index_rows


def main() -> None:
    accelerator = get_device("flexnerfer")
    print(f"FlexNeRFer: {accelerator.area_mm2():.1f} mm^2 in 28nm")
    for mode, watts in accelerator.power_profile().items():
        print(f"  power @ {mode}: {watts:.1f} W")

    engine = SweepEngine()
    config = FrameConfig(image_width=800, image_height=800, batch_size=4096)
    rows = engine.run(
        SweepSpec(
            devices=("rtx-2080-ti", "neurex", "flexnerfer"),
            models=tuple(MODEL_REGISTRY),
            precisions=(Precision.INT16,),
            base_config=config,
        )
    )
    by_point = index_rows(rows, "device", "model")

    header = (
        f"{'model':<12} {'GPU [ms]':>10} {'NeuRex [ms]':>12} {'FlexNeRFer [ms]':>16} "
        f"{'speedup':>8} {'energy gain':>12}"
    )
    print("\nPer-frame comparison (INT16, no pruning):")
    print(header)
    for model in MODEL_REGISTRY:
        gpu = by_point[("RTX 2080 Ti", model)]
        neurex = by_point[("NeuRex", model)]
        flex = by_point[("FlexNeRFer", model)]
        print(
            f"{model:<12} {gpu.report.frame_time_ms:>10.1f} "
            f"{neurex.report.frame_time_ms:>12.1f} {flex.report.frame_time_ms:>16.1f} "
            f"{gpu.latency_s / flex.latency_s:>8.1f} "
            f"{gpu.energy_j / flex.energy_j:>12.1f}"
        )


if __name__ == "__main__":
    main()

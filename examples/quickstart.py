"""Quickstart: estimate FlexNeRFer's cost and per-model rendering performance.

Builds the accelerator model, prints its area/power (paper Fig. 16), then
renders one frame of every NeRF model at INT16 and compares the latency and
energy against an RTX 2080 Ti and the NeuRex accelerator.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FlexNeRFer, Precision
from repro.baselines import GPUModel, NeuRex
from repro.nerf.models import FrameConfig, all_models


def main() -> None:
    accelerator = FlexNeRFer()
    gpu = GPUModel()
    neurex = NeuRex()

    area = accelerator.area()
    print(f"FlexNeRFer: {area.total_mm2:.1f} mm^2 in 28nm")
    for precision in (Precision.INT16, Precision.INT8, Precision.INT4):
        print(f"  power @ {precision.name}: {accelerator.power(precision).total_w:.1f} W")

    config = FrameConfig(image_width=800, image_height=800, batch_size=4096)
    header = (
        f"{'model':<12} {'GPU [ms]':>10} {'NeuRex [ms]':>12} {'FlexNeRFer [ms]':>16} "
        f"{'speedup':>8} {'energy gain':>12}"
    )
    print("\nPer-frame comparison (INT16, no pruning):")
    print(header)
    for model in all_models():
        workload = model.build_workload(config)
        gpu_report = gpu.render_frame(workload)
        neurex_report = neurex.render_frame(workload)
        flex_report = accelerator.render_frame(workload, precision=Precision.INT16)
        print(
            f"{model.name:<12} {gpu_report.frame_time_ms:>10.1f} "
            f"{neurex_report.frame_time_ms:>12.1f} {flex_report.frame_time_ms:>16.1f} "
            f"{gpu_report.latency_s / flex_report.latency_s:>8.1f} "
            f"{gpu_report.energy_j / flex_report.energy_j:>12.1f}"
        )


if __name__ == "__main__":
    main()

"""Drive the first-class Experiment API programmatically.

Every paper artifact is a registered ``Experiment`` with typed parameters;
running one returns an ``ExperimentResult`` whose uniform shape (columns +
row dicts + provenance) renders to a table, JSON or CSV without the caller
knowing anything about the experiment's internal dataclasses.

The same objects power the CLI: ``repro run fig19 --models all`` is exactly
``get_experiment("fig19").run(models=("all",))``.

Run with:  PYTHONPATH=src python examples/experiment_api.py
"""

from __future__ import annotations

from repro.experiments import EXPERIMENTS, experiments_by_tag, get_experiment


def main() -> None:
    print(f"{len(EXPERIMENTS)} registered experiments; frame-sim studies:")
    for exp in experiments_by_tag("frame-sim"):
        flags = ", ".join(p.flag for p in exp.params) or "(no parameters)"
        print(f"  {exp.id:<22} {flags}")

    # Run one experiment with overridden typed parameters.  Strings are
    # parsed exactly like CLI flag values would be.
    experiment = get_experiment("fig19")
    result = experiment.run(models=("instant-ngp",), pruning_ratios="0,0.5,0.9")

    print(f"\n{result.title} (wall time {result.provenance.wall_time_s:.2f}s)")
    print(result.to_table())

    # The uniform row shape means downstream code never touches GainPoint &
    # friends: pick the best FlexNeRFer configuration straight off the rows.
    best = max(
        (row for row in result.rows if row["device"] == "FlexNeRFer"),
        key=lambda row: row["speedup"],
    )
    print(
        f"\nbest FlexNeRFer point: {best['precision']} at "
        f"{best['pruning_ratio'] * 100:.0f}% pruning -> {best['speedup']:.1f}x"
    )
    print(f"provenance fingerprint: {result.provenance.config_fingerprint}")


if __name__ == "__main__":
    main()

"""Dense mapping of a sparse irregular GEMM onto the MAC array (paper Fig. 5).

Generates a small sparse irregular GEMM, measures the sparsity of the input
tile online (the sparsity-ratio calculator of Section 4.3), compresses both
operands into their optimal formats, maps every non-zero product densely onto
a small MAC array through the distribution network, and verifies that the
reduced outputs match a plain matrix multiplication.

Run with:  python examples/sparse_gemm_mapping.py
"""

from __future__ import annotations

import numpy as np

from repro.core.compression import SparsityAwareCompressor
from repro.core.distribution import DistributionNetwork
from repro.core.mac_array import MACArray
from repro.sparse.formats import Precision
from repro.sparse.tensor import random_sparse_matrix


def main() -> None:
    rng = np.random.default_rng(7)
    precision = Precision.INT8
    activations = random_sparse_matrix((12, 20), sparsity=0.65, precision=precision, rng=rng)
    weights = random_sparse_matrix((20, 14), sparsity=0.40, precision=precision, rng=rng)

    compressor = SparsityAwareCompressor(precision)
    activation_record = compressor.compress_input(activations)
    compressor.analyze_weights("layer0", weights)
    weight_record = compressor.compress_weights("layer0", weights)
    print("Online sparsity-aware compression:")
    print(
        f"  activations: sparsity {activation_record.decision.sparsity_ratio:.2f}, "
        f"format {activation_record.encoded.fmt.value}, "
        f"compression {activation_record.compression_ratio:.2f}x"
    )
    print(
        f"  weights:     sparsity {1 - np.count_nonzero(weights) / weights.size:.2f}, "
        f"format {weight_record.encoded.fmt.value}, "
        f"compression {weight_record.compression_ratio:.2f}x"
    )

    network = DistributionNetwork(array_rows=8, array_cols=8)
    plan = network.map_sparse_gemm(activations, weights)
    costs = network.distribute(plan)
    print("\nDense mapping onto an 8x8 MAC array:")
    print(f"  non-zero products mapped: {plan.num_products}")
    print(f"  array passes:             {plan.num_passes}")
    print(f"  MAC utilisation:          {plan.utilization * 100:.1f}%")
    print(f"  per-row dataflows (pass 0): "
          f"{[mode.value for mode in plan.row_dataflows()]}")
    print(f"  buffer reads / switch hops / mesh hops: "
          f"{costs['buffer_reads']} / {costs['switch_traversals']} / {costs['mesh_traversals']}")

    array = MACArray(rows=8, cols=8)
    result = array.gemm(activations, weights, precision)
    reference = activations @ weights
    print("\nFunctional check: MAC-array GEMM equals NumPy matmul:",
          bool(np.array_equal(result, reference)))


if __name__ == "__main__":
    main()

"""Precision / pruning design-space sweep for one NeRF model (paper Fig. 19).

Sweeps FlexNeRFer's precision modes (INT16/8/4) and structured-pruning ratios
for a chosen NeRF model and prints the speedup and energy-efficiency gain over
the RTX 2080 Ti, alongside the flat NeuRex baseline.

Run with:  python examples/precision_pruning_sweep.py [model]
(model defaults to instant-ngp; any of: nerf, kilonerf, nsvf, mip-nerf,
instant-ngp, ibrnet, tensorf)
"""

from __future__ import annotations

import sys

from repro import FlexNeRFer, Precision
from repro.baselines import GPUModel, NeuRex
from repro.nerf.models import FrameConfig, get_model

PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.9)


def main(model_name: str = "instant-ngp") -> None:
    workload = get_model(model_name).build_workload(FrameConfig())
    gpu_report = GPUModel().render_frame(workload)
    neurex_report = NeuRex().render_frame(workload)
    accelerator = FlexNeRFer()

    print(f"Model: {model_name}   GPU frame time: {gpu_report.frame_time_ms:.1f} ms")
    print(f"NeuRex: {neurex_report.frame_time_ms:.1f} ms "
          f"({gpu_report.latency_s / neurex_report.latency_s:.1f}x speedup, "
          f"flat across pruning/precision)")
    print(f"\n{'precision':<10} {'pruning %':>10} {'latency [ms]':>13} {'speedup':>9} {'energy gain':>12}")
    for precision in (Precision.INT16, Precision.INT8, Precision.INT4):
        for pruning in PRUNING_RATIOS:
            report = accelerator.render_frame(
                workload, precision=precision, pruning_ratio=pruning
            )
            print(
                f"{precision.name:<10} {pruning * 100:>10.0f} {report.frame_time_ms:>13.2f} "
                f"{gpu_report.latency_s / report.latency_s:>9.1f} "
                f"{gpu_report.energy_j / report.energy_j:>12.1f}"
            )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "instant-ngp")

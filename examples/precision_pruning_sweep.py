"""Precision / pruning design-space sweep for one NeRF model (paper Fig. 19).

Declares one SweepEngine sweep over FlexNeRFer's precision modes (INT16/8/4)
and structured-pruning ratios for a chosen NeRF model and prints the speedup
and energy-efficiency gain over the RTX 2080 Ti, alongside the flat NeuRex
baseline (which the engine's capability-aware cache simulates exactly once).

Run with:  PYTHONPATH=src python examples/precision_pruning_sweep.py [model]
(model defaults to instant-ngp; any of: nerf, kilonerf, nsvf, mip-nerf,
instant-ngp, ibrnet, tensorf)
"""

from __future__ import annotations

import sys

from repro import Precision, SweepEngine, SweepSpec

PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.9)
PRECISIONS = (Precision.INT16, Precision.INT8, Precision.INT4)


def main(model_name: str = "instant-ngp") -> None:
    engine = SweepEngine()
    gpu_report = engine.frame_report("rtx-2080-ti", model_name)
    neurex_report = engine.frame_report("neurex", model_name)

    print(f"Model: {model_name}   GPU frame time: {gpu_report.frame_time_ms:.1f} ms")
    print(f"NeuRex: {neurex_report.frame_time_ms:.1f} ms "
          f"({gpu_report.latency_s / neurex_report.latency_s:.1f}x speedup, "
          f"flat across pruning/precision)")

    rows = engine.run(
        SweepSpec(
            devices=("flexnerfer",),
            models=(model_name,),
            precisions=PRECISIONS,
            pruning_ratios=PRUNING_RATIOS,
        )
    )
    print(f"\n{'precision':<10} {'pruning %':>10} {'latency [ms]':>13} {'speedup':>9} {'energy gain':>12}")
    for row in rows:
        print(
            f"{row.precision.name:<10} {row.pruning_ratio * 100:>10.0f} "
            f"{row.report.frame_time_ms:>13.2f} "
            f"{gpu_report.latency_s / row.latency_s:>9.1f} "
            f"{gpu_report.energy_j / row.energy_j:>12.1f}"
        )
    stats = engine.stats
    print(f"\n[{stats.render_calls} frame simulations served "
          f"{stats.report_hits + stats.report_misses} requests]")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "instant-ngp")

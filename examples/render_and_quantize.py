"""Functional NeRF rendering with quantization (paper Fig. 20(a) in miniature).

Fits the Instant-NGP-style renderer to a synthetic scene, renders it in FP32
and at INT16/8/4 (plain and outlier-aware), reports the PSNR of each variant,
and prints the per-stage activation sparsity that motivates FlexNeRFer's
online sparsity-aware compression (paper Fig. 13(a)).

Run with:  python examples/render_and_quantize.py
"""

from __future__ import annotations

from repro import Precision
from repro.nerf.hashgrid import HashGridConfig
from repro.nerf.rays import Camera
from repro.nerf.renderer import InstantNGPRenderer, render_reference
from repro.nerf.scenes import get_scene
from repro.quant.metrics import psnr


def main(scene_name: str = "lego", image_size: int = 64) -> None:
    scene = get_scene(scene_name)
    camera = Camera(width=image_size, height=image_size, focal=image_size * 1.2)
    renderer = InstantNGPRenderer(
        HashGridConfig(
            num_levels=6, features_per_level=4, log2_table_size=14,
            base_resolution=8, max_resolution=96,
        )
    )
    renderer.fit_to_scene(scene)

    reference = render_reference(scene, camera, num_samples=48)
    fp32 = renderer.render(camera, num_samples=48)
    print(f"Scene '{scene_name}' ({image_size}x{image_size})")
    print(f"  model PSNR vs oracle reference: {psnr(reference, fp32):.1f} dB")

    print("\nStage sparsity (drives the online format selection):")
    for stage, value in renderer.stats.stage_sparsity.items():
        print(f"  {stage:<22} {value * 100:6.2f}%")

    print("\nQuantization study (PSNR vs the FP32 render):")
    settings = [
        ("INT16", Precision.INT16, False),
        ("INT8", Precision.INT8, False),
        ("INT4", Precision.INT4, False),
        ("INT8 + outliers", Precision.INT8, True),
        ("INT4 + outliers", Precision.INT4, True),
    ]
    for label, precision, outlier_aware in settings:
        image = renderer.render(
            camera, num_samples=48, precision=precision,
            outlier_aware=outlier_aware, record_stats=False,
        )
        print(f"  {label:<16} {psnr(fp32, image):6.1f} dB")


if __name__ == "__main__":
    main()

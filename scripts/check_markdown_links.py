#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

Usage::

    python scripts/check_markdown_links.py README.md docs

Each argument is a markdown file or a directory to scan recursively for
``*.md``.  Inline links and images (``[text](target)`` / ``![alt](target)``)
whose targets are not URLs or pure in-page anchors are resolved relative to
the containing file and must exist on disk.  Exits 1 listing every broken
link; no third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link/image: capture the target inside ``(...)``.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Targets that are not local files.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """Expand file / directory arguments into a sorted list of .md files."""
    files: set[Path] = set()
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.exists():
            files.add(path)
        else:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def broken_links(markdown_file: Path) -> list[str]:
    """Relative link targets of ``markdown_file`` that do not exist."""
    problems = []
    text = markdown_file.read_text()
    # Ignore fenced code blocks: CLI examples legitimately contain ``[...]``.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (markdown_file.parent / file_part).resolve()
        if not resolved.exists():
            problems.append(f"{markdown_file}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    """Entry point: scan every argument and report broken relative links."""
    arguments = argv or ["README.md", "docs"]
    files = iter_markdown_files(arguments)
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        return 2
    problems = [problem for path in files for problem in broken_links(path)]
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

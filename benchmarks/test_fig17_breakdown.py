"""Benchmark regenerating Fig. 17: FlexNeRFer vs NeuRex cost breakdowns."""

from bench_utils import emit, run_once

from repro.experiments import fig17_breakdown


def test_fig17_breakdown(benchmark):
    result = run_once(benchmark, fig17_breakdown.run)
    emit("Fig. 17 - accelerator breakdowns", fig17_breakdown.format_table(result))
    assert result.area_overhead > 0.0
    assert result.power_overhead > 0.0
    assert result.format_codec_area_fraction < 0.1

"""Benchmark regenerating Fig. 17: FlexNeRFer vs NeuRex cost breakdowns."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig17_breakdown(benchmark):
    result = run_once(benchmark, get_experiment("fig17").run)
    emit("Fig. 17 - accelerator breakdowns", result.to_table())
    breakdown = result.raw
    assert breakdown.area_overhead > 0.0
    assert breakdown.power_overhead > 0.0
    assert breakdown.format_codec_area_fraction < 0.1

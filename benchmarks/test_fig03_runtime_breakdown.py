"""Benchmark regenerating Fig. 3: GPU runtime breakdown per NeRF model."""

from bench_utils import emit, run_once

from repro.experiments import fig03_runtime_breakdown


def test_fig03_runtime_breakdown(benchmark):
    rows = run_once(benchmark, fig03_runtime_breakdown.run)
    emit("Fig. 3 - GPU runtime breakdown", fig03_runtime_breakdown.format_table(rows))
    assert all(row.gemm_fraction > 0.3 for row in rows)

"""Benchmark regenerating Fig. 3: GPU runtime breakdown per NeRF model."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig03_runtime_breakdown(benchmark):
    result = run_once(benchmark, get_experiment("fig03").run)
    emit("Fig. 3 - GPU runtime breakdown", result.to_table())
    assert all(row.gemm_fraction > 0.3 for row in result.raw)

"""Benchmark regenerating Fig. 4: NVDLA / TPU MAC utilisation scenarios."""

from bench_utils import emit, run_once

from repro.experiments import fig04_mac_utilization


def test_fig04_mac_utilization(benchmark):
    rows = run_once(benchmark, fig04_mac_utilization.run)
    emit("Fig. 4 - MAC utilisation", fig04_mac_utilization.format_table(rows))
    by_key = {row.scenario: row for row in rows}
    assert by_key["irregular_dense_gemm"].tpu_utilization == 1.0
    assert by_key["irregular_dense_gemm"].nvdla_utilization < 0.1

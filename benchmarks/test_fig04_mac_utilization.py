"""Benchmark regenerating Fig. 4: NVDLA / TPU MAC utilisation scenarios."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig04_mac_utilization(benchmark):
    result = run_once(benchmark, get_experiment("fig04").run)
    emit("Fig. 4 - MAC utilisation", result.to_table())
    by_key = {row.scenario: row for row in result.raw}
    assert by_key["irregular_dense_gemm"].tpu_utilization == 1.0
    assert by_key["irregular_dense_gemm"].nvdla_utilization < 0.1

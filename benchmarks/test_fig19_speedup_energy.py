"""Benchmark regenerating Fig. 19: speedup / energy gain over the RTX 2080 Ti."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment
from repro.sparse.formats import Precision


def test_fig19_speedup_energy(benchmark):
    result = run_once(
        benchmark,
        get_experiment("fig19").run,
        models=("nerf", "instant-ngp", "tensorf"),
    )
    emit("Fig. 19 - speedup / energy gain", result.to_table())
    points = result.raw
    neurex = [p.speedup for p in points if p.device == "NeuRex"]
    assert max(neurex) == min(neurex)  # flat across pruning
    flex = [
        p for p in points
        if p.device == "FlexNeRFer" and p.precision is Precision.INT16
    ]
    assert flex[-1].speedup > flex[0].speedup > neurex[0]

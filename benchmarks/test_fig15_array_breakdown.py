"""Benchmark regenerating Fig. 15: compute-array area/power breakdowns."""

from bench_utils import emit, run_once

from repro.experiments import fig15_array_breakdown


def test_fig15_array_breakdown(benchmark):
    rows = run_once(benchmark, fig15_array_breakdown.run)
    emit("Fig. 15 - array breakdowns", fig15_array_breakdown.format_table(rows))
    by_name = {row.name: row for row in rows}
    assert by_name["Bit-Scalable SIGMA"].total_area_mm2 > by_name["FlexNeRFer MAC Array"].total_area_mm2
    assert by_name["SIGMA"].total_area_mm2 < by_name["FlexNeRFer MAC Array"].total_area_mm2

"""Benchmark regenerating Fig. 15: compute-array area/power breakdowns."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig15_array_breakdown(benchmark):
    result = run_once(benchmark, get_experiment("fig15").run)
    emit("Fig. 15 - array breakdowns", result.to_table())
    by_name = {row.name: row for row in result.raw}
    assert by_name["Bit-Scalable SIGMA"].total_area_mm2 > by_name["FlexNeRFer MAC Array"].total_area_mm2
    assert by_name["SIGMA"].total_area_mm2 < by_name["FlexNeRFer MAC Array"].total_area_mm2

"""Benchmark regenerating Fig. 20(a): PSNR vs energy-efficiency per precision."""

from bench_utils import emit, run_once

from repro.experiments import fig20a_psnr


def test_fig20a_psnr(benchmark):
    points = run_once(benchmark, fig20a_psnr.run)
    emit("Fig. 20(a) - PSNR vs energy efficiency", fig20a_psnr.format_table(points))
    by_label = {p.label: p for p in points}
    assert by_label["INT16"].psnr_db > by_label["INT4"].psnr_db
    assert by_label["INT4 + outliers"].psnr_db >= by_label["INT4"].psnr_db

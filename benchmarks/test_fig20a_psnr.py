"""Benchmark regenerating Fig. 20(a): PSNR vs energy-efficiency per precision."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig20a_psnr(benchmark):
    result = run_once(benchmark, get_experiment("fig20a").run)
    emit("Fig. 20(a) - PSNR vs energy efficiency", result.to_table())
    by_label = {p.label: p for p in result.raw}
    assert by_label["INT16"].psnr_db > by_label["INT4"].psnr_db
    assert by_label["INT4 + outliers"].psnr_db >= by_label["INT4"].psnr_db

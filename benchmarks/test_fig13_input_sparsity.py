"""Benchmark regenerating Fig. 13(a): input sparsity across rendering stages."""

from bench_utils import emit, run_once

from repro.experiments import fig13_input_sparsity


def test_fig13_input_sparsity(benchmark):
    rows = run_once(benchmark, fig13_input_sparsity.run)
    emit("Fig. 13(a) - stage sparsity", fig13_input_sparsity.format_table(rows))
    by_scene = {row.scene: row for row in rows}
    assert by_scene["mic"].input_ray_marching > by_scene["lego"].input_ray_marching
    assert all(row.output_relu1 < 0.1 for row in rows)

"""Benchmark regenerating Fig. 13(a): input sparsity across rendering stages."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig13_input_sparsity(benchmark):
    result = run_once(benchmark, get_experiment("fig13").run)
    emit("Fig. 13(a) - stage sparsity", result.to_table())
    by_scene = {row.scene: row for row in result.raw}
    assert by_scene["mic"].input_ray_marching > by_scene["lego"].input_ray_marching
    assert all(row.output_relu1 < 0.1 for row in result.raw)

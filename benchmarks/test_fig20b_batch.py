"""Benchmark regenerating Fig. 20(b): speedup vs batch size / scene complexity."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig20b_batch(benchmark):
    result = run_once(benchmark, get_experiment("fig20b").run)
    emit("Fig. 20(b) - batch-size sweep", result.to_table())
    mic = [p for p in result.raw if p.scene == "mic"]
    palace = [p for p in result.raw if p.scene == "palace"]
    assert min(p.flexnerfer_latency_s for p in mic) < min(
        p.flexnerfer_latency_s for p in palace
    )

"""Benchmark regenerating Fig. 20(b): speedup vs batch size / scene complexity."""

from bench_utils import emit, run_once

from repro.experiments import fig20b_batch


def test_fig20b_batch(benchmark):
    points = run_once(benchmark, fig20b_batch.run)
    emit("Fig. 20(b) - batch-size sweep", fig20b_batch.format_table(points))
    mic = [p for p in points if p.scene == "mic"]
    palace = [p for p in points if p.scene == "palace"]
    assert min(p.flexnerfer_latency_s for p in mic) < min(
        p.flexnerfer_latency_s for p in palace
    )

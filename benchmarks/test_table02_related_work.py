"""Benchmark regenerating Table 2: qualitative flexible-NoC comparison."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_table02_related_work(benchmark):
    result = run_once(benchmark, get_experiment("table02").run)
    emit("Table 2 - related work", result.to_table())
    flexnerfer = result.raw[-1]
    assert flexnerfer.multi_sparsity_format and flexnerfer.bit_level_flexibility

"""Benchmark regenerating Table 2: qualitative flexible-NoC comparison."""

from bench_utils import emit, run_once

from repro.experiments import table02_related_work


def test_table02_related_work(benchmark):
    rows = run_once(benchmark, table02_related_work.run)
    emit("Table 2 - related work", table02_related_work.format_table(rows))
    flexnerfer = rows[-1]
    assert flexnerfer.multi_sparsity_format and flexnerfer.bit_level_flexibility

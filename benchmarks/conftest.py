"""Benchmark-suite conftest: make ``bench_utils`` importable by name.

The helper functions themselves live in :mod:`bench_utils` (not here) so the
benchmark modules can import them without colliding with the test-suite
conftest when tests and benchmarks are collected in one pytest run.
"""

from __future__ import annotations

import sys
from pathlib import Path

_BENCH_DIR = str(Path(__file__).resolve().parent)
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)

"""Benchmark regenerating Fig. 18: normalised latency and compute density."""

from bench_utils import emit, run_once

from repro.experiments import fig18_latency_density
from repro.sparse.formats import Precision


def test_fig18_latency_density(benchmark):
    rows = run_once(benchmark, fig18_latency_density.run)
    emit("Fig. 18 - latency / compute density", fig18_latency_density.format_table(rows))
    flex = {row.precision: row for row in rows if row.device == "FlexNeRFer"}
    assert flex[Precision.INT16].normalized_latency < 1.0
    assert flex[Precision.INT4].compute_density > flex[Precision.INT16].compute_density > 1.0

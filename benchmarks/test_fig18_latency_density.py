"""Benchmark regenerating Fig. 18: normalised latency and compute density."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment
from repro.sparse.formats import Precision


def test_fig18_latency_density(benchmark):
    result = run_once(benchmark, get_experiment("fig18").run)
    emit("Fig. 18 - latency / compute density", result.to_table())
    flex = {row.precision: row for row in result.raw if row.device == "FlexNeRFer"}
    assert flex[Precision.INT16].normalized_latency < 1.0
    assert flex[Precision.INT4].compute_density > flex[Precision.INT16].compute_density > 1.0

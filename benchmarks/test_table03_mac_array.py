"""Benchmark regenerating Table 3: MAC-array spec comparison."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment
from repro.sparse.formats import Precision


def test_table03_mac_array(benchmark):
    result = run_once(benchmark, get_experiment("table03").run)
    emit("Table 3 - MAC-array comparison", result.to_table())
    flex = result.raw.row("FlexNeRFer MAC Array")
    sigma = result.raw.row("SIGMA")
    assert flex.effective_efficiency[Precision.INT16] >= sigma.effective_efficiency[Precision.INT16]
    assert 25.0 < flex.area_mm2 < 32.0

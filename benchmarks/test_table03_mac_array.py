"""Benchmark regenerating Table 3: MAC-array spec comparison."""

from bench_utils import emit, run_once

from repro.experiments import table03_mac_array
from repro.sparse.formats import Precision


def test_table03_mac_array(benchmark):
    table = run_once(benchmark, table03_mac_array.run)
    emit("Table 3 - MAC-array comparison", table03_mac_array.format_table(table))
    flex = table.row("FlexNeRFer MAC Array")
    sigma = table.row("SIGMA")
    assert flex.effective_efficiency[Precision.INT16] >= sigma.effective_efficiency[Precision.INT16]
    assert 25.0 < flex.area_mm2 < 32.0

"""Benchmark regenerating Fig. 6(b): multiplier grid and fetch size per mode."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig06_fetch_sizes(benchmark):
    result = run_once(benchmark, get_experiment("fig06").run)
    emit("Fig. 6(b) - fetch sizes", result.to_table())
    assert [row.num_multipliers for row in result.raw] == [64**2, 128**2, 256**2]

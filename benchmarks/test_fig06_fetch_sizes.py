"""Benchmark regenerating Fig. 6(b): multiplier grid and fetch size per mode."""

from bench_utils import emit, run_once

from repro.experiments import fig06_fetch_sizes


def test_fig06_fetch_sizes(benchmark):
    rows = run_once(benchmark, fig06_fetch_sizes.run)
    emit("Fig. 6(b) - fetch sizes", fig06_fetch_sizes.format_table(rows))
    assert [row.num_multipliers for row in rows] == [64**2, 128**2, 256**2]

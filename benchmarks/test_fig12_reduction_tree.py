"""Benchmark regenerating Fig. 12(c): MAC unit area/power with optimised RT."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig12_reduction_tree(benchmark):
    result = run_once(benchmark, get_experiment("fig12").run)
    emit("Fig. 12(c) - MAC unit comparison", result.to_table())
    comparison = result.raw
    assert 0.2 < comparison.area_reduction < 0.4
    assert 0.35 < comparison.power_reduction < 0.55

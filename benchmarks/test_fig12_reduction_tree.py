"""Benchmark regenerating Fig. 12(c): MAC unit area/power with optimised RT."""

from bench_utils import emit, run_once

from repro.experiments import fig12_reduction_tree


def test_fig12_reduction_tree(benchmark):
    result = run_once(benchmark, fig12_reduction_tree.run)
    emit("Fig. 12(c) - MAC unit comparison", fig12_reduction_tree.format_table(result))
    assert 0.2 < result.area_reduction < 0.4
    assert 0.35 < result.power_reduction < 0.55

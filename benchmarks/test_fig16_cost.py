"""Benchmark regenerating Fig. 16: accelerator-level area/power comparison."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig16_cost(benchmark):
    result = run_once(benchmark, get_experiment("fig16").run)
    emit("Fig. 16 - device cost", result.to_table())
    by_device = {row.device: row for row in result.raw}
    assert by_device["FlexNeRFer"].meets_area_constraint
    assert by_device["FlexNeRFer"].meets_power_constraint
    assert not by_device["RTX 2080 Ti"].meets_power_constraint

"""Benchmark regenerating Fig. 16: accelerator-level area/power comparison."""

from bench_utils import emit, run_once

from repro.experiments import fig16_cost


def test_fig16_cost(benchmark):
    rows = run_once(benchmark, fig16_cost.run)
    emit("Fig. 16 - device cost", fig16_cost.format_table(rows))
    by_device = {row.device: row for row in rows}
    assert by_device["FlexNeRFer"].meets_area_constraint
    assert by_device["FlexNeRFer"].meets_power_constraint
    assert not by_device["RTX 2080 Ti"].meets_power_constraint

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the reproduced rows/series so the numbers can be compared side by side
with the paper.  Lives outside ``conftest.py`` so the module can be imported
by name without clashing with the test-suite conftest when the whole repo is
collected in one pytest run.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, text: str) -> None:
    """Print a reproduced table under a recognisable header."""
    print(f"\n===== {title} =====")
    print(text)

"""Benchmark regenerating Fig. 1: GPU rendering latency of seven NeRF models."""

from bench_utils import emit, run_once

from repro.experiments import fig01_gpu_latency


def test_fig01_gpu_latency(benchmark):
    rows = run_once(benchmark, fig01_gpu_latency.run)
    emit("Fig. 1 - GPU rendering latency", fig01_gpu_latency.format_table(rows))
    assert len(rows) == 7
    assert all(row.exceeds_vr_threshold for row in rows)

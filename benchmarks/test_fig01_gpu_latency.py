"""Benchmark regenerating Fig. 1: GPU rendering latency of seven NeRF models."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_fig01_gpu_latency(benchmark):
    result = run_once(benchmark, get_experiment("fig01").run)
    emit("Fig. 1 - GPU rendering latency", result.to_table())
    rows = result.raw
    assert len(rows) == 7
    assert all(row.exceeds_vr_threshold for row in rows)

"""Benchmark regenerating Fig. 7: memory footprint vs sparsity per format."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment
from repro.experiments import fig07_footprint
from repro.sparse.formats import Precision, SparsityFormat


def test_fig07_footprint(benchmark):
    result = run_once(benchmark, get_experiment("fig07").run)
    emit("Fig. 7 - normalised footprints", result.to_table())
    series = result.raw
    crossover_16 = fig07_footprint.crossover_sparsity(series, Precision.INT16)
    crossover_4 = fig07_footprint.crossover_sparsity(series, Precision.INT4)
    assert crossover_16[SparsityFormat.COO] < crossover_4[SparsityFormat.COO]

"""Benchmark regenerating Fig. 8: optimal sparsity format per ratio and mode."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment
from repro.sparse.formats import SparsityFormat


def test_fig08_optimal_format(benchmark):
    result = run_once(benchmark, get_experiment("fig08").run)
    emit("Fig. 8 - optimal formats", result.to_table())
    for row in result.raw:
        assert row.optimal_format[0] is SparsityFormat.NONE
        assert row.optimal_format[-1] is not SparsityFormat.NONE

"""Benchmark regenerating Fig. 8: optimal sparsity format per ratio and mode."""

from bench_utils import emit, run_once

from repro.experiments import fig08_optimal_format
from repro.sparse.formats import SparsityFormat


def test_fig08_optimal_format(benchmark):
    rows = run_once(benchmark, fig08_optimal_format.run)
    emit("Fig. 8 - optimal formats", fig08_optimal_format.format_table(rows))
    for row in rows:
        assert row.optimal_format[0] is SparsityFormat.NONE
        assert row.optimal_format[-1] is not SparsityFormat.NONE

"""Benchmarks regenerating the serving studies (`serve-*` experiments)."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_serve_latency_sla(benchmark):
    result = run_once(benchmark, get_experiment("serve-latency-sla").run)
    emit("Serving - tail latency / goodput vs offered load", result.to_table())
    points = result.raw
    # Tail latency grows monotonically with offered load...
    p95 = [p.p95_latency_ms for p in points]
    assert p95 == sorted(p95)
    # ...and the saturated point misses far more SLAs than the light one.
    assert points[0].sla_attainment > points[-1].sla_attainment


def test_serve_fleet_mix(benchmark):
    result = run_once(benchmark, get_experiment("serve-fleet-mix").run)
    emit("Serving - fleet compositions under diurnal load", result.to_table())
    by_fleet = {p.fleet: p for p in result.raw}
    flex2 = by_fleet["flexnerfer+flexnerfer"]
    mixed = by_fleet["flexnerfer+neurex"]
    neurex2 = by_fleet["neurex+neurex"]
    # All-FlexNeRFer dominates; the mixed fleet recovers most of the gap
    # because the router steers sparsity-friendly scenarios appropriately.
    assert flex2.p95_latency_ms < mixed.p95_latency_ms < neurex2.p95_latency_ms
    assert flex2.sla_attainment >= mixed.sla_attainment > neurex2.sla_attainment


def test_serve_batch_policy(benchmark):
    result = run_once(benchmark, get_experiment("serve-batch-policy").run)
    emit("Serving - FIFO vs batch-up-to-deadline", result.to_table())
    by_policy = {p.policy: p for p in result.raw}
    fifo = by_policy["fifo"]
    batch8 = by_policy["batch-8"]
    # Batching rescues an overloaded device: order-of-magnitude tail win,
    # higher goodput, cheaper requests.
    assert batch8.p95_latency_ms < fifo.p95_latency_ms / 5
    assert batch8.goodput_rps > fifo.goodput_rps
    assert batch8.energy_per_request_mj < fifo.energy_per_request_mj
    # max_batch=1 degenerates to FIFO exactly (same stream, same device).
    assert by_policy["batch-1"].p95_latency_ms == fifo.p95_latency_ms


def test_serve_overload_sla(benchmark):
    result = run_once(benchmark, get_experiment("serve-overload-sla").run)
    emit("Serving - overload control: SLO attainment per mechanism", result.to_table())
    overloaded = [p for p in result.raw if p.rate_rps >= 50.0]
    by_mode = {(p.rate_rps, p.mode): p for p in result.raw}
    # At every overloaded rate, each control mechanism strictly beats the
    # uncontrolled baseline on SLO attainment (rejections count as misses).
    for point in overloaded:
        if point.mode == "none":
            continue
        assert point.slo_attainment > by_mode[(point.rate_rps, "none")].slo_attainment
    # Shedding trades quality, admission trades completions.
    shed = by_mode[(50.0, "shed")]
    cap = by_mode[(50.0, "queue-cap")]
    assert shed.rejected == 0 and shed.mean_quality < 1.0
    assert cap.rejected > 0 and cap.mean_quality == 1.0


def test_serve_autoscale(benchmark):
    result = run_once(benchmark, get_experiment("serve-autoscale").run)
    emit("Serving - autoscaling policies vs static pools", result.to_table())
    by_policy = {p.policy: p for p in result.raw}
    static1 = by_policy["static-1"]
    static6 = by_policy["static-6"]
    queue = by_policy["queue-depth"]
    # The autoscaler lands between the static extremes: far better SLA than
    # one device, at a fraction of the full pool's provisioned capacity.
    assert queue.sla_attainment > static1.sla_attainment * 5
    assert queue.mean_workers < static6.mean_workers / 2
    assert static1.mean_workers <= queue.mean_workers <= static6.mean_workers


def test_serve_quality_shed(benchmark):
    result = run_once(benchmark, get_experiment("serve-quality-shed").run)
    emit("Serving - quality shedding: attainment vs quality", result.to_table())
    by_config = {p.config: p for p in result.raw}
    none = by_config["none"]
    timid = by_config["shed/16"]
    aggressive = by_config["shed/2"]
    # Shedding harder monotonically buys attainment and spends quality.
    assert aggressive.slo_attainment > timid.slo_attainment > none.slo_attainment
    assert aggressive.mean_quality < timid.mean_quality <= none.mean_quality
    assert aggressive.p05_quality < none.p05_quality

"""Benchmarks regenerating the serving studies (`serve-*` experiments)."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_serve_latency_sla(benchmark):
    result = run_once(benchmark, get_experiment("serve-latency-sla").run)
    emit("Serving - tail latency / goodput vs offered load", result.to_table())
    points = result.raw
    # Tail latency grows monotonically with offered load...
    p95 = [p.p95_latency_ms for p in points]
    assert p95 == sorted(p95)
    # ...and the saturated point misses far more SLAs than the light one.
    assert points[0].sla_attainment > points[-1].sla_attainment


def test_serve_fleet_mix(benchmark):
    result = run_once(benchmark, get_experiment("serve-fleet-mix").run)
    emit("Serving - fleet compositions under diurnal load", result.to_table())
    by_fleet = {p.fleet: p for p in result.raw}
    flex2 = by_fleet["flexnerfer+flexnerfer"]
    mixed = by_fleet["flexnerfer+neurex"]
    neurex2 = by_fleet["neurex+neurex"]
    # All-FlexNeRFer dominates; the mixed fleet recovers most of the gap
    # because the router steers sparsity-friendly scenarios appropriately.
    assert flex2.p95_latency_ms < mixed.p95_latency_ms < neurex2.p95_latency_ms
    assert flex2.sla_attainment >= mixed.sla_attainment > neurex2.sla_attainment


def test_serve_batch_policy(benchmark):
    result = run_once(benchmark, get_experiment("serve-batch-policy").run)
    emit("Serving - FIFO vs batch-up-to-deadline", result.to_table())
    by_policy = {p.policy: p for p in result.raw}
    fifo = by_policy["fifo"]
    batch8 = by_policy["batch-8"]
    # Batching rescues an overloaded device: order-of-magnitude tail win,
    # higher goodput, cheaper requests.
    assert batch8.p95_latency_ms < fifo.p95_latency_ms / 5
    assert batch8.goodput_rps > fifo.goodput_rps
    assert batch8.energy_per_request_mj < fifo.energy_per_request_mj
    # max_batch=1 degenerates to FIFO exactly (same stream, same device).
    assert by_policy["batch-1"].p95_latency_ms == fifo.p95_latency_ms

"""Benchmarks for the design-choice ablations called out in DESIGN.md."""

from bench_utils import emit, run_once

from repro.experiments import get_experiment


def test_ablation_noc(benchmark):
    result = run_once(benchmark, get_experiment("ablation-noc").run)
    emit("Ablation - HMF-NoC vs HM-NoC / CLB", result.to_table())
    assert result.raw.memory_access_energy_ratio > 1.5


def test_ablation_compression(benchmark):
    result = run_once(benchmark, get_experiment("ablation-compression").run)
    emit("Ablation - sparsity-aware compression", result.to_table())
    assert all(row.traffic_reduction > 0.0 for row in result.raw)

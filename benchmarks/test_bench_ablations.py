"""Benchmarks for the design-choice ablations called out in DESIGN.md."""

from bench_utils import emit, run_once

from repro.experiments import ablation_compression, ablation_noc


def test_ablation_noc(benchmark):
    result = run_once(benchmark, ablation_noc.run)
    emit("Ablation - HMF-NoC vs HM-NoC / CLB", ablation_noc.format_table(result))
    assert result.memory_access_energy_ratio > 1.5


def test_ablation_compression(benchmark):
    rows = run_once(benchmark, ablation_compression.run)
    emit(
        "Ablation - sparsity-aware compression",
        ablation_compression.format_table(rows),
    )
    assert all(row.traffic_reduction > 0.0 for row in rows)
